// Admission control for the request queue: decide AT ENQUEUE TIME whether
// a request can be served at all, so overload is shed at the cheap end of
// the pipeline instead of timing out deep inside it.
//
// Four independent gates, checked in order:
//
//   1. pre-expired deadline  — a request whose deadline is already in the
//      past can only ever produce kBudgetExceeded; reject it before it
//      occupies a queue slot (Status kBudgetExceeded).
//   2. tenant rate quota     — the per-tenant token bucket (quota.h), when
//      one is configured: a tenant past its rate is shed with kOverloaded
//      BEFORE the capacity gates, so its flood never competes for queue
//      slots with in-quota tenants (Status kOverloaded).
//   3. capacity              — global queue depth bound and the per-tenant
//      in-flight cap (queued + executing), both Status kOverloaded. The
//      per-tenant cap is what keeps one hot dataset from monopolizing the
//      queue the fair drain order protects.
//   4. deadline feasibility  — with a deadline set and an observed-latency
//      EWMA available, a request that would (in expectation) still be
//      queued when its deadline fires is shed with kOverloaded rather
//      than admitted to die in the queue.
//
// The controller is pure policy plus counters; the RequestQueue calls
// Admit() under its own lock so the check and the push are atomic.

#ifndef RETRUST_SERVICE_ADMISSION_H_
#define RETRUST_SERVICE_ADMISSION_H_

#include <cstdint>
#include <mutex>
#include <string>

#include "src/api/status.h"
#include "src/service/quota.h"
#include "src/service/stats.h"

namespace retrust::service {

class AdmissionController {
 public:
  struct Options {
    /// Global bound on queued requests (0 = unbounded).
    size_t queue_capacity = 256;
    /// Per-tenant bound on queued + executing requests (0 = unbounded).
    size_t per_tenant_inflight = 0;
    /// Worker count, for the expected-wait estimate of gate 4.
    int workers = 1;
    /// Per-tenant token buckets (gate 2). Nullable (= no rate limiting);
    /// NOT owned — the Server owns the manager and must outlive this.
    QuotaManager* quota = nullptr;
  };

  explicit AdmissionController(Options opts) : opts_(opts) {}

  /// Policy decision for one request about to be enqueued. `queue_depth`
  /// and `tenant_load` (queued + executing for the request's tenant) are
  /// read under the queue lock by the caller. `deadline_seconds` is the
  /// request's remaining budget (0 = none; negative = already expired).
  Status Admit(double deadline_seconds, size_t queue_depth,
               size_t tenant_load, const std::string& tenant);

  /// Feeds gate 3's EWMA with one request's SERVICE time (execution
  /// only — the wait estimate multiplies by queue depth, so queue wait
  /// must not be baked into the samples or it gets double-counted).
  void ObserveLatency(double seconds);

  /// Expected queue wait with `queue_depth` requests ahead (0 until the
  /// first latency observation).
  double EstimatedWaitSeconds(size_t queue_depth) const;

  /// Copies the rejection counters into a stats snapshot.
  void Snapshot(ServerStats* out) const;

  /// Point-in-time rejection tallies, one per gate. Sampled by the metrics
  /// registry probe (src/obs/metrics.h), which labels each gate as a
  /// `rejected_total{reason=...}` series.
  struct RejectionCounts {
    uint64_t queue_full = 0;
    uint64_t tenant_cap = 0;
    uint64_t deadline = 0;
    uint64_t quota = 0;
  };
  RejectionCounts Rejections() const;

  /// Current service-latency EWMA (gate 4's estimate base); 0 until the
  /// first observation. Exposed as a gauge.
  double LatencyEwmaSeconds() const;

  const Options& options() const { return opts_; }

 private:
  Options opts_;
  mutable std::mutex mu_;  ///< guards the EWMA and the counters
  double ewma_seconds_ = 0.0;
  bool have_ewma_ = false;
  uint64_t rejected_queue_full_ = 0;
  uint64_t rejected_tenant_cap_ = 0;
  uint64_t rejected_deadline_ = 0;
  uint64_t rejected_quota_ = 0;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_ADMISSION_H_
