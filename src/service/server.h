// retrust::service::Server — the multi-tenant repair service: one process,
// many datasets, one admission-controlled request queue.
//
// The Beskales et al. repair model is request-shaped by construction —
// every (dataset, Σ, τ) query is independent work over a cached context —
// so the service layer is mostly traffic engineering:
//
//   Client verbs ──▶ AdmissionController ──▶ RequestQueue ──▶ worker pool
//                     (shed or reject)        (fair lanes)     (exec::ThreadPool)
//                                                                  │
//                                             TenantRegistry ◀─────┘
//                                             (name → Session, lazy open)
//
// Guarantees:
//   * Admission rejects BEFORE enqueue: queue-full and per-tenant caps map
//     to kOverloaded, pre-expired deadlines to kBudgetExceeded, and
//     deadline-infeasible load (EWMA wait estimate) to kOverloaded.
//   * Per-tenant sequential consistency for any worker count: lanes are
//     FIFO, reads run concurrently, an apply_delta is a barrier (see
//     queue.h) — responses are bit-identical to serial per-Session
//     execution in submission order (tests/service_oracle_test.cc).
//   * Fair round-robin draining across tenants: a hot tenant delays only
//     itself.
//   * Cancellation never leaks work: a request cancelled while queued is
//     completed with kCancelled by the worker that pops it WITHOUT
//     touching a Session; an executing request is cancelled cooperatively
//     through exec::CancelToken.
//
// The in-process surface is Client (typed submit -> std::future). The
// wire surface is tools/retrust_server: newline-delimited JSON over a
// loopback socket, one verb per line (wire.h).

#ifndef RETRUST_SERVICE_SERVER_H_
#define RETRUST_SERVICE_SERVER_H_

#include <array>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/api/session.h"
#include "src/exec/thread_pool.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/service/admission.h"
#include "src/service/queue.h"
#include "src/service/quota.h"
#include "src/service/stats.h"
#include "src/service/tenant_registry.h"

namespace retrust::service {

struct ServerOptions {
  /// Request-executing workers (clamped to >= 1). Parallelism across
  /// requests and tenants; each request runs its Session verb inline.
  int workers = 2;
  /// Global queued-request bound (0 = unbounded); admission sheds past it.
  size_t queue_capacity = 256;
  /// Per-tenant queued+executing cap (0 = unbounded).
  size_t per_tenant_inflight = 0;
  /// Size of the ONE pool shared by every tenant Session for sweeps and
  /// deltas (0/1 = none: sessions run serially inside a request, which is
  /// the right default — cross-request parallelism comes from `workers`).
  int session_threads = 0;
  /// Construct with dispatch paused (Resume() starts draining): gives
  /// tests deterministic queue states and ops a maintenance mode.
  bool start_paused = false;
  /// Defaults for tenants registered without explicit SessionOptions.
  SessionOptions session_defaults;
  /// Tenant snapshot directory (empty = disabled): lets the registry
  /// auto-save dirty tenants to "<dir>/<name>.snap" when unloading, so
  /// unload_tenant and the byte budget work even after deltas.
  std::string snapshot_dir;
  /// Estimated-byte budget across loaded tenant Sessions (0 = unbounded):
  /// after each lazy load the registry unloads least-recently-used idle
  /// tenants until the budget fits (see TenantRegistry).
  size_t max_loaded_tenant_bytes = 0;
  /// Default per-tenant rate quota (quota.h; rate 0 = unlimited, the
  /// default). Per-tenant overrides via Server::SetTenantQuota or the
  /// load_tenant wire verb's quota_rate/quota_burst fields.
  QuotaLimits default_quota;
  /// Injectable quota clock (monotone seconds; null = steady_clock) so
  /// tests can step refill time deterministically.
  std::function<double()> quota_clock;
  /// Master switch for the observability layer (metrics probe, flight
  /// recorder, slow-request log). Off = the server touches no registry and
  /// records nothing — the A/B baseline the overhead bench gate compares
  /// against. Per-request tracing is independent of this switch: it costs
  /// nothing unless a request carries a trace.
  bool observability = true;
  /// Registry the server publishes into (null = MetricsRegistry::Global()).
  /// Tests and benches inject a private registry so concurrent servers do
  /// not share series (registry counters are get-or-create by name).
  obs::MetricsRegistry* metrics = nullptr;
  /// Finished-request records the flight recorder retains (clamped >= 1).
  size_t flight_recorder_capacity = 256;
  /// Requests slower than this (end-to-end) are logged to stderr with
  /// their span tree, rate-limited to one line per second (0 = disabled).
  double slow_request_seconds = 0.0;
};

/// A submitted request: its server-assigned id (usable with
/// Client::Cancel) and the future carrying the reply. Rejected requests
/// return a future that is already ready with the rejection status.
template <typename T>
struct Submitted {
  uint64_t id = 0;
  std::future<T> future;
};

class Server;

/// Lightweight handle for submitting work; copyable, borrows the Server.
class Client {
 public:
  explicit Client(Server* server) : server_(server) {}

  /// Algorithm 1 for one tenant. `req.deadline_seconds` is reinterpreted
  /// as the END-TO-END service deadline: queue wait counts against it and
  /// only the remainder is granted to the search. `req.cancel` must be
  /// null — cancellation goes through Cancel(id).
  Submitted<Result<RepairResponse>> Repair(const std::string& tenant,
                                           const RepairRequest& req);

  /// Algorithm 2 probe, same conventions as Repair.
  Submitted<Result<SearchProbe>> Search(const std::string& tenant,
                                        const RepairRequest& req);

  /// One queue unit running the whole batch through Session::RepairMany
  /// on the tenant's sweep — the τ-sweep verb. Per-request deadlines
  /// apply from execution start; the unit itself has no service deadline.
  Submitted<std::vector<Result<RepairResponse>>> Sweep(
      const std::string& tenant, std::vector<RepairRequest> reqs);

  /// Batch submit: one queue entry per request (they drain independently,
  /// interleaved fairly with other tenants), futures in request order.
  std::vector<Submitted<Result<RepairResponse>>> RepairBatch(
      const std::string& tenant, std::span<const RepairRequest> reqs);

  /// Session::Apply as a queued write: a per-tenant barrier — it executes
  /// only after the tenant's earlier requests drained, and later ones
  /// wait for it (sequential consistency; see queue.h).
  Submitted<Result<ApplyStats>> Apply(const std::string& tenant,
                                      DeltaBatch delta);

  /// Saves the tenant's state to `path` (src/persist/ snapshot) as a
  /// queued WRITE: the per-tenant barrier means the file is a consistent
  /// cut — everything submitted before it is included, nothing after.
  /// The snapshot becomes the tenant's reload spec. Replies with the path.
  Submitted<Result<std::string>> SaveSnapshot(const std::string& tenant,
                                              std::string path);

  /// Unloads the tenant's Session (memory reclaimed; the next request
  /// reloads from its spec) as a queued WRITE, so it waits for the
  /// tenant's earlier requests. kInvalidArgument when the tenant's state
  /// cannot be reproduced from its spec and no snapshot_dir is set.
  Submitted<Result<bool>> UnloadTenant(const std::string& tenant);

  // --- async variants ----------------------------------------------------
  // The same verbs completion-callback style: `done` is invoked EXACTLY
  // once with the reply — on a worker thread after execution, or
  // synchronously on the calling thread for pre-admission rejections. All
  // server bookkeeping (stats, lane slot, live table) is finished before
  // `done` runs. This is what the event-driven wire front end
  // (event_loop.h) builds on: thousands of outstanding requests without a
  // blocked thread each. Returns the request id (0 for synchronous
  // rejections that never reached admission).
  uint64_t RepairAsync(const std::string& tenant, const RepairRequest& req,
                       std::function<void(Result<RepairResponse>)> done);
  uint64_t SearchAsync(const std::string& tenant, const RepairRequest& req,
                       std::function<void(Result<SearchProbe>)> done);
  uint64_t SweepAsync(
      const std::string& tenant, std::vector<RepairRequest> reqs,
      std::function<void(std::vector<Result<RepairResponse>>)> done);
  uint64_t ApplyAsync(const std::string& tenant, DeltaBatch delta,
                      std::function<void(Result<ApplyStats>)> done);
  uint64_t SaveSnapshotAsync(const std::string& tenant, std::string path,
                             std::function<void(Result<std::string>)> done);
  uint64_t UnloadTenantAsync(const std::string& tenant,
                             std::function<void(Result<bool>)> done);

  /// Cancels a live request: queued -> completed with kCancelled without
  /// touching any Session; executing -> cooperative CancelToken. False
  /// when the id is unknown or already finished.
  bool Cancel(uint64_t id);

  ServerStats Stats() const;

 private:
  Server* server_;
};

class Server {
 public:
  explicit Server(ServerOptions opts = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Tenant registration (TenantRegistry semantics; AddCsv is lazy).
  Status LoadTenant(const std::string& name, Instance data,
                    const std::vector<std::string>& fd_texts,
                    std::optional<SessionOptions> opts = std::nullopt);
  Status LoadCsvTenant(const std::string& name, std::string csv_path,
                       std::vector<std::string> fd_texts,
                       std::optional<SessionOptions> opts = std::nullopt);
  /// Lazy snapshot-backed tenant: the first request restores the file via
  /// Session::OpenSnapshot (warm caches included, no O(n²) build).
  Status LoadSnapshotTenant(const std::string& name,
                            std::string snapshot_path,
                            std::optional<SessionOptions> opts = std::nullopt);

  Client client() { return Client(this); }
  TenantRegistry& tenants() { return tenants_; }

  /// Sets (or clears, with unlimited limits) one tenant's rate quota.
  /// Takes effect for the NEXT admission decision; the bucket starts full.
  void SetTenantQuota(const std::string& tenant, QuotaLimits limits) {
    quota_.SetLimits(tenant, limits);
  }
  QuotaManager& quota() { return quota_; }

  ServerStats Stats() const;
  /// Registry + queue view of one tenant (never forces a lazy open).
  Result<TenantStats> TenantStatsFor(const std::string& name) const;
  std::vector<std::string> TenantNames() const { return tenants_.Names(); }

  /// The registry this server publishes into (null when observability is
  /// off). The wire `metrics` verb serves its ExpositionText().
  obs::MetricsRegistry* metrics() const { return metrics_; }
  /// Newest-first flight records (0 = all retained; empty when
  /// observability is off). The wire `dump_recent` verb serves this.
  std::vector<obs::FlightRecord> RecentRequests(size_t limit = 0) const;
  /// Requests seen over the slow threshold (logged or rate-suppressed).
  uint64_t SlowRequestsSeen() const;

  /// Maintenance gate: Pause stops dispatch (admission keeps running, the
  /// queue fills), Resume drains. See ServerOptions::start_paused.
  void Pause();
  void Resume();

  /// Stops the server: fails queued requests with kCancelled, fires the
  /// cancel token of in-flight ones, joins the workers. Idempotent;
  /// the destructor calls it.
  void Stop();

  const ServerOptions& options() const { return opts_; }

 private:
  friend class Client;

  /// Shared submit path of every verb, completion-callback style. `run`
  /// executes the verb against the resolved session; `on_fail` builds the
  /// verb's reply for a status (needed because a sweep's reply is a
  /// vector, not a Result); `done` receives the reply exactly once, AFTER
  /// all bookkeeping (stats, lane slot, live table) — on the worker
  /// thread, or synchronously on the caller's for pre-admission
  /// rejections. Returns the request id.
  template <typename T>
  uint64_t SubmitAsync(const std::string& tenant, const char* verb,
                       bool is_write, double deadline_seconds,
                       std::shared_ptr<obs::RequestTrace> trace,
                       std::function<T(Session&, PendingRequest&)> run,
                       std::function<T(const Status&)> on_fail,
                       std::function<void(T)> done);

  /// Future-returning convenience over SubmitAsync (the in-process Client
  /// verbs).
  template <typename T>
  Submitted<T> Submit(const std::string& tenant, const char* verb,
                      bool is_write, double deadline_seconds,
                      std::shared_ptr<obs::RequestTrace> trace,
                      std::function<T(Session&, PendingRequest&)> run,
                      std::function<T(const Status&)> on_fail);

  bool Cancel(uint64_t id);
  void WorkerLoop();

  /// Folds one executed search's counters into the server-wide aggregates
  /// (ServerStats::search_* plus the per-policy series) and into the
  /// request's flight-record fields. Called by the verb lambdas on the
  /// worker threads — lock-free atomics, no stats_mu_.
  void RecordSearchStats(const SearchStats& stats,
                         search::SearchPolicy policy,
                         PendingRequest* pending);

  /// The metrics probe body: samples every layer (request flow, queue,
  /// admission, quota, pools, latency histograms, search aggregates,
  /// tenant context caches, flight recorder) into `out`. Runs under the
  /// registry mutex at exposition time; must never call back into the
  /// registry.
  void CollectMetrics(obs::Collector& out) const;

  /// Writes the terminal flight record (and feeds the slow-request log on
  /// the executed path, where a span tree may exist). No-op when
  /// observability is off.
  void RecordFlight(const PendingRequest& req, const char* status_label,
                    double queue_wait, double service_seconds,
                    double total_seconds);

  ServerOptions opts_;
  /// Shared session pool (sweeps + deltas of ALL tenants); null when
  /// session_threads <= 1. Declared before tenants_/queue_ so it outlives
  /// every Session using it.
  std::unique_ptr<exec::ThreadPool> session_pool_;
  TenantRegistry tenants_;
  /// Declared before admission_: the controller holds a pointer to it.
  QuotaManager quota_;
  AdmissionController admission_;
  RequestQueue queue_;

  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> cancelled_{0};
  std::atomic<uint64_t> expired_{0};
  std::atomic<uint64_t> completed_{0};
  std::atomic<uint64_t> search_expansions_{0};
  std::atomic<uint64_t> search_lb_prunes_{0};
  std::atomic<uint64_t> search_incumbents_{0};

  /// Per-policy search aggregates, indexed by search::SearchPolicy, for
  /// the `retrust_search_requests_total{policy=...}` series family.
  struct PolicySearchAgg {
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> expansions{0};
    std::atomic<uint64_t> visited{0};
  };
  std::array<PolicySearchAgg, 3> policy_search_{};

  /// Observability components; all null/absent when
  /// ServerOptions::observability is false.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<obs::FlightRecorder> recorder_;
  std::unique_ptr<obs::SlowRequestLog> slow_log_;

  mutable std::mutex stats_mu_;  ///< live_, histograms, completed_by_tenant_
  std::map<uint64_t, std::shared_ptr<PendingRequest>> live_;
  LatencyHistogram latency_;      ///< end-to-end: submit -> reply
  LatencyHistogram queue_wait_;   ///< submit -> execution start
  LatencyHistogram service_;      ///< execution start -> reply built
  std::map<std::string, uint64_t> completed_by_tenant_;

  std::mutex stop_mu_;
  bool stopped_ = false;
  /// Declared last: destroyed first, joining the workers after Stop()
  /// released them from the queue.
  std::unique_ptr<exec::ThreadPool> worker_pool_;
  /// After worker_pool_ so it is destroyed FIRST: the probe samples every
  /// member above, and unregistration (under the registry mutex) means no
  /// exposition can still be running through this server afterwards.
  obs::MetricsRegistry::Registration metrics_probe_;
};

}  // namespace retrust::service

#endif  // RETRUST_SERVICE_SERVER_H_
