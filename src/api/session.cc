#include "src/api/session.h"

#include <cmath>
#include <filesystem>
#include <utility>

#include "src/persist/snapshot.h"
#include "src/relational/csv.h"
#include "src/repair/weights.h"
#include "src/util/hash.h"
#include "src/util/timer.h"

namespace retrust {

namespace {

/// Cache key of a context: everything FdSearchContext construction consumes
/// besides the (fixed) dataset. Collisions are disambiguated by the Σ
/// equality probe in BundleFor.
uint64_t Fingerprint(const FDSet& sigma, const SessionOptions& opts) {
  uint64_t seed = 0x5e55104eULL;  // "session"
  for (const FD& fd : sigma.fds()) {
    HashCombine(&seed, fd.lhs.bits());
    HashCombine(&seed, static_cast<uint64_t>(static_cast<uint32_t>(fd.rhs)));
  }
  HashCombine(&seed, static_cast<uint64_t>(opts.weights));
  HashCombine(&seed, static_cast<uint64_t>(opts.heuristic.max_diffsets));
  HashCombine(&seed, static_cast<uint64_t>(opts.heuristic.max_nodes));
  HashCombine(&seed, opts.heuristic.strict_leave_check ? 1u : 0u);
  HashCombine(&seed, static_cast<uint64_t>(opts.exec.ResolvedThreads()));
  return seed;
}

/// Conflict edges held by a context's difference-set index — the sizing
/// weight of the byte-accurate cache bound.
int64_t IndexEdges(const FdSearchContext& ctx) {
  int64_t edges = 0;
  for (const DiffSetGroup& g : ctx.index().groups()) {
    edges += g.frequency();  // counted groups weigh their logical pairs
  }
  return edges;
}

/// Edge-weighted memory estimate of one cached context. Edge storage
/// dominates (every group keeps its edge list and the violation table and
/// cover memo scale with groups, not tuples); the per-group constant
/// covers the group record, its incidence row, and memo bookkeeping.
size_t EstimateContextBytes(int64_t edges, int num_groups) {
  constexpr size_t kPerGroup = 128;
  return static_cast<size_t>(edges) * sizeof(Edge) +
         static_cast<size_t>(num_groups) * kPerGroup +
         sizeof(FdSearchContext);
}

Status NoRepairStatus(SearchTermination termination, int64_t tau) {
  switch (termination) {
    case SearchTermination::kCancelled:
      return Status::Error(StatusCode::kCancelled,
                           "request cancelled before a repair was found");
    case SearchTermination::kVisitBudget:
      return Status::Error(StatusCode::kBudgetExceeded,
                           "visit budget exhausted before a repair was found");
    case SearchTermination::kDeadline:
      return Status::Error(StatusCode::kBudgetExceeded,
                           "deadline expired before a repair was found");
    case SearchTermination::kCompleted:
      break;
  }
  return Status::Error(
      StatusCode::kNoRepairWithinTau,
      "no relaxation of the FDs admits a repair with at most " +
          std::to_string(tau) + " cell changes");
}

Result<FDSet> ParseFds(const std::vector<std::string>& fd_texts,
                       const Schema& schema) {
  try {
    return FDSet::Parse(fd_texts, schema);
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kInvalidFd, e.what());
  }
}

}  // namespace

Result<int64_t> CheckedTauFromRelative(double tau_r, int64_t root_delta_p) {
  if (std::isnan(tau_r) || tau_r < 0.0 || tau_r > 1.0) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "tau_r must be in [0, 1], got " +
                             std::to_string(tau_r));
  }
  if (root_delta_p < 0) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "root_delta_p must be >= 0, got " +
                             std::to_string(root_delta_p));
  }
  return TauFromRelative(tau_r, root_delta_p);
}

Session::Session(Instance data, SessionOptions opts)
    : instance_(std::make_unique<Instance>(std::move(data))),
      encoded_(std::make_unique<EncodedInstance>(*instance_)),
      opts_(opts),
      mu_(std::make_unique<std::mutex>()),
      state_mu_(std::make_unique<std::shared_mutex>()) {}

Session::Session(Instance data, EncodedInstance encoded, SessionOptions opts)
    : instance_(std::make_unique<Instance>(std::move(data))),
      encoded_(std::make_unique<EncodedInstance>(std::move(encoded))),
      opts_(opts),
      mu_(std::make_unique<std::mutex>()),
      state_mu_(std::make_unique<std::shared_mutex>()) {}

Result<Session> Session::Open(Instance data, FDSet sigma,
                              SessionOptions opts) {
  Session session(std::move(data), std::move(opts));
  Status status = session.SetFds(std::move(sigma));
  if (!status.ok()) return status;
  return session;
}

Result<Session> Session::Open(Instance data,
                              const std::vector<std::string>& fd_texts,
                              SessionOptions opts) {
  Result<FDSet> sigma = ParseFds(fd_texts, data.schema());
  if (!sigma.ok()) return sigma.status();
  return Open(std::move(data), std::move(*sigma), std::move(opts));
}

Result<Session> Session::OpenCsv(const std::string& path,
                                 const std::vector<std::string>& fd_texts,
                                 SessionOptions opts) {
  try {
    Instance data = ReadCsvFile(path);
    return Open(std::move(data), fd_texts, std::move(opts));
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kIoError, e.what());
  }
}

Result<Session> Session::OpenSnapshot(const std::string& path,
                                      SessionOptions opts) {
  Result<persist::SnapshotData> data = persist::ReadSnapshotFile(path);
  if (!data.ok()) return data.status();
  // Σ comes FROM the snapshot; what must match is the caller's (weights,
  // heuristic) configuration, or the warm caches would encode a different
  // cost model than the session claims to run.
  const uint64_t expected = persist::ConfigFingerprint(
      data->sigma, static_cast<uint8_t>(opts.weights), opts.heuristic);
  if (expected != data->fingerprint) {
    return Status::Error(
        StatusCode::kSchemaMismatch,
        "snapshot '" + path +
            "' was saved under a different (weights, heuristic) "
            "configuration than this session requests");
  }
  // Defense in depth: the stored stamp must describe the stored data. A
  // file that passes its CRC but fails this was assembled inconsistently.
  if (persist::DataStamp(data->encoded) != data->data_stamp) {
    return Status::Error(StatusCode::kIoError,
                         "snapshot '" + path +
                             "' data stamp does not match its own payload");
  }
  try {
    Instance decoded = data->encoded.Decode();
    decoded.RestoreNextVarCounters(std::move(data->instance_next_var));
    Session session(std::move(decoded), std::move(data->encoded),
                    std::move(opts));
    Status adopted =
        session.AdoptContext(std::move(data->sigma), std::move(data->index),
                             std::move(data->warm), data->root_delta_p);
    if (!adopted.ok()) return adopted;
    session.data_version_ = data->data_version;
    return session;
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kIoError,
                         "snapshot '" + path +
                             "' could not be restored: " + e.what());
  }
}

Status Session::AdoptContext(FDSet sigma, DifferenceSetIndex index,
                             DeltaPEvaluator::WarmState warm,
                             int64_t expected_root_delta_p) {
  Status status = Validate(sigma);
  if (!status.ok()) return status;
  try {
    const uint64_t fp = Fingerprint(sigma, opts_);
    std::lock_guard<std::mutex> lock(*mu_);
    const WeightFunction* weights = &WeightFor(opts_.weights);
    auto bundle = std::make_shared<ContextBundle>();
    bundle->sigma = std::move(sigma);
    bundle->weights = weights;
    bundle->context = std::make_unique<FdSearchContext>(
        bundle->sigma, *encoded_, *weights, opts_.heuristic, std::move(index),
        std::move(warm));
    bundle->sweep = std::make_unique<exec::Sweep>(*bundle->context, *encoded_,
                                                 opts_.exec,
                                                 opts_.shared_pool);
    bundle->root_delta_p = bundle->context->RootDeltaP();
    if (bundle->root_delta_p != expected_root_delta_p) {
      return Status::Error(
          StatusCode::kIoError,
          "snapshot failed its restore self-check: recomputed root deltaP " +
              std::to_string(bundle->root_delta_p) + " != saved " +
              std::to_string(expected_root_delta_p));
    }
    bundle->edges = IndexEdges(*bundle->context);
    bundle->bytes = EstimateContextBytes(bundle->edges,
                                         bundle->context->index().size());
    bundle->last_used = ++use_clock_;
    ++cache_misses_;  // a restore builds (cheaply); it did not hit the cache
    cache_[fp].push_back(bundle);
    active_fingerprint_ = fp;
    active_ = std::move(bundle);
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kIoError,
                         std::string("snapshot restore failed: ") + e.what());
  }
  return Status::Ok();
}

Status Session::SaveSnapshot(const std::string& path) const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  try {
    persist::SnapshotView view;
    view.fingerprint = persist::ConfigFingerprint(
        active_->sigma, static_cast<uint8_t>(opts_.weights), opts_.heuristic);
    view.data_stamp = persist::DataStamp(*encoded_);
    view.data_version = data_version_;
    view.root_delta_p = active_->root_delta_p;
    view.weight_model = static_cast<uint8_t>(opts_.weights);
    view.heuristic = opts_.heuristic;
    view.encoded = encoded_.get();
    view.instance_next_var = &instance_->next_var_counters();
    view.sigma = &active_->sigma;
    view.index = &active_->context->index();
    view.warm = active_->context->evaluator().ExportWarmState();
    return persist::WriteSnapshotFile(path, view);
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kInternal, e.what());
  }
}

Status Session::EnableJournal(const std::string& path) {
  std::unique_lock<std::shared_mutex> snapshot(*state_mu_);
  const uint64_t fp = persist::ConfigFingerprint(
      active_->sigma, static_cast<uint8_t>(opts_.weights), opts_.heuristic);
  std::error_code ec;
  const bool exists = std::filesystem::exists(path, ec) && !ec &&
                      std::filesystem::file_size(path, ec) > 0 && !ec;
  if (exists) {
    auto writer = persist::JournalWriter::Append(path, fp);
    if (!writer.ok()) return writer.status();
    const persist::JournalHeader& header = (*writer)->header();
    if (header.base_version + (*writer)->num_records() != data_version_) {
      return Status::Error(
          StatusCode::kInvalidArgument,
          "journal '" + path + "' ends at data version " +
              std::to_string(header.base_version + (*writer)->num_records()) +
              " but this session is at " + std::to_string(data_version_) +
              "; replay it first");
    }
    journal_ = std::move(*writer);
    return Status::Ok();
  }
  persist::JournalHeader header;
  header.fingerprint = fp;
  header.base_stamp = persist::DataStamp(*encoded_);
  header.base_version = data_version_;
  auto writer = persist::JournalWriter::Create(path, header);
  if (!writer.ok()) return writer.status();
  journal_ = std::move(*writer);
  return Status::Ok();
}

Result<int> Session::ReplayJournal(const std::string& path) {
  Result<persist::JournalContents> contents = persist::ReadJournalFile(path);
  if (!contents.ok()) return contents.status();
  {
    std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
    if (journal_ != nullptr) {
      return Status::Error(
          StatusCode::kInvalidArgument,
          "cannot replay while a journal is attached (replayed batches "
          "would be re-logged); replay first, then EnableJournal");
    }
    const uint64_t fp = persist::ConfigFingerprint(
        active_->sigma, static_cast<uint8_t>(opts_.weights), opts_.heuristic);
    if (contents->header.fingerprint != fp) {
      return Status::Error(
          StatusCode::kSchemaMismatch,
          "journal '" + path +
              "' was written under a different Σ/weights configuration");
    }
    if (contents->header.base_stamp != persist::DataStamp(*encoded_)) {
      return Status::Error(StatusCode::kSchemaMismatch,
                           "journal '" + path +
                               "' extends a different base dataset");
    }
    if (contents->header.base_version != data_version_) {
      return Status::Error(
          StatusCode::kInvalidArgument,
          "journal '" + path + "' is based at data version " +
              std::to_string(contents->header.base_version) +
              " but this session is at " + std::to_string(data_version_));
    }
  }
  int applied = 0;
  for (const DeltaBatch& batch : contents->batches) {
    Result<ApplyStats> stats = Apply(batch);
    if (!stats.ok()) {
      return Status::Error(stats.status().code(),
                           "journal '" + path + "' replay stopped at record " +
                               std::to_string(applied) + ": " +
                               stats.status().message());
    }
    ++applied;
  }
  return applied;
}

Status Session::Validate(const FDSet& sigma) const {
  const int m = encoded_->NumAttrs();
  const AttrSet universe = AttrSet::Universe(m);
  for (int i = 0; i < sigma.size(); ++i) {
    const FD& fd = sigma.fd(i);
    if (fd.rhs < 0 || fd.rhs >= m || !fd.lhs.SubsetOf(universe)) {
      return Status::Error(StatusCode::kSchemaMismatch,
                           "FD " + fd.ToString() +
                               " references attributes outside the " +
                               std::to_string(m) + "-attribute schema");
    }
    if (fd.IsTrivial()) {
      return Status::Error(StatusCode::kInvalidFd,
                           "FD " + fd.ToString() +
                               " is trivial (RHS contained in LHS)");
    }
  }
  return Status::Ok();
}

const WeightFunction& Session::WeightFor(WeightModel model) {
  std::unique_ptr<WeightFunction>& slot = weight_cache_[static_cast<int>(model)];
  if (slot == nullptr) {
    switch (model) {
      case WeightModel::kDistinctCount:
        slot = std::make_unique<DistinctCountWeight>(*encoded_);
        break;
      case WeightModel::kCardinality:
        slot = std::make_unique<CardinalityWeight>();
        break;
      case WeightModel::kEntropy:
        slot = std::make_unique<EntropyWeight>(*encoded_);
        break;
    }
  }
  return *slot;
}

std::shared_ptr<Session::ContextBundle> Session::BundleFor(FDSet sigma) {
  const uint64_t fp = Fingerprint(sigma, opts_);
  std::lock_guard<std::mutex> lock(*mu_);
  const WeightFunction* weights = &WeightFor(opts_.weights);
  std::vector<std::shared_ptr<ContextBundle>>& bucket = cache_[fp];
  // Σ/weights equality disambiguates genuine 64-bit collisions.
  for (const std::shared_ptr<ContextBundle>& bundle : bucket) {
    if (bundle->sigma == sigma && bundle->weights == weights) {
      ++cache_hits_;
      ++bundle->hits;
      bundle->last_used = ++use_clock_;
      active_fingerprint_ = fp;
      return bundle;
    }
  }
  ++cache_misses_;
  auto bundle = std::make_shared<ContextBundle>();
  bundle->sigma = std::move(sigma);
  bundle->weights = weights;
  bundle->context = std::make_unique<FdSearchContext>(
      bundle->sigma, *encoded_, *bundle->weights, opts_.heuristic,
      opts_.exec);
  bundle->sweep = std::make_unique<exec::Sweep>(*bundle->context, *encoded_,
                                               opts_.exec, opts_.shared_pool);
  bundle->root_delta_p = bundle->context->RootDeltaP();
  bundle->edges = IndexEdges(*bundle->context);
  bundle->bytes = EstimateContextBytes(bundle->edges,
                                       bundle->context->index().size());
  bundle->last_used = ++use_clock_;
  bucket.push_back(bundle);
  active_fingerprint_ = fp;
  return bundle;
}

void Session::EvictIfNeeded() {
  if (opts_.max_cached_contexts == 0 && opts_.max_cached_bytes == 0) return;
  std::lock_guard<std::mutex> lock(*mu_);
  auto over_budget = [this] {
    size_t n = 0;
    size_t bytes = 0;
    for (const auto& [fp, bucket] : cache_) {
      n += bucket.size();
      for (const std::shared_ptr<ContextBundle>& b : bucket) bytes += b->bytes;
    }
    return (opts_.max_cached_contexts != 0 &&
            n > opts_.max_cached_contexts) ||
           (opts_.max_cached_bytes != 0 && bytes > opts_.max_cached_bytes);
  };
  while (over_budget()) {
    // Oldest last_used wins; the active context is exempt so the cache
    // always answers for the live Σ.
    std::map<uint64_t,
             std::vector<std::shared_ptr<ContextBundle>>>::iterator
        victim_bucket = cache_.end();
    size_t victim_slot = 0;
    uint64_t victim_age = 0;
    bool found = false;
    for (auto it = cache_.begin(); it != cache_.end(); ++it) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        const ContextBundle* b = it->second[i].get();
        if (b == active_.get()) continue;
        if (!found || b->last_used < victim_age) {
          victim_bucket = it;
          victim_slot = i;
          victim_age = b->last_used;
          found = true;
        }
      }
    }
    if (!found) return;  // only the active bundle left
    victim_bucket->second.erase(victim_bucket->second.begin() + victim_slot);
    if (victim_bucket->second.empty()) cache_.erase(victim_bucket);
    ++cache_evictions_;
  }
}

Status Session::SetFds(FDSet sigma) {
  Status status = Validate(sigma);
  if (!status.ok()) return status;
  try {
    active_ = BundleFor(std::move(sigma));
    EvictIfNeeded();
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kInternal, e.what());
  }
  return Status::Ok();
}

Status Session::SetFds(const std::vector<std::string>& fd_texts) {
  Result<FDSet> sigma = ParseFds(fd_texts, schema());
  if (!sigma.ok()) return sigma.status();
  return SetFds(std::move(*sigma));
}

Status Session::SetWeights(WeightModel weights) {
  FDSet sigma = active_->sigma;
  WeightModel previous = opts_.weights;
  opts_.weights = weights;
  Status status = SetFds(std::move(sigma));
  if (!status.ok()) opts_.weights = previous;  // failed switch changes nothing
  return status;
}

Result<ApplyStats> Session::Apply(const DeltaBatch& delta) {
  // Exclusive snapshot lock: in-flight requests (shared holders) drain
  // first, later ones observe the fully patched state.
  std::unique_lock<std::shared_mutex> snapshot(*state_mu_);
  Timer timer;
  ApplyStats stats;
  stats.tuples_inserted = static_cast<int>(delta.inserts.size());
  stats.tuples_updated = static_cast<int>(delta.updates.size());
  stats.tuples_deleted = static_cast<int>(delta.deletes.size());
  stats.num_tuples = encoded_->NumTuples();
  stats.data_version = data_version_;
  if (delta.Empty()) {
    stats.seconds = timer.ElapsedSeconds();
    return stats;
  }
  DeltaPlan plan;
  try {
    plan = PlanDelta(delta, encoded_->NumTuples(), encoded_->NumAttrs());
  } catch (const std::invalid_argument& e) {
    // Validation failed before anything mutated; the session is untouched.
    return Status::Error(StatusCode::kInvalidArgument, e.what());
  }
  if (journal_ != nullptr) {
    // Write-ahead: the batch is durable before anything mutates, so the
    // journal is always >= the in-memory state (a logged-but-unapplied
    // batch after a crash replays to the state this Apply was producing).
    Status logged = journal_->AppendBatch(delta);
    if (!logged.ok()) return logged;
  }
  try {
    instance_->ApplyDelta(delta, plan);
    encoded_->ApplyDelta(delta, plan);
    bool patch_failed = false;
    {
      std::lock_guard<std::mutex> lock(*mu_);
      // Memoized projections are stale against the mutated instance; they
      // refill lazily on the next Weight() call.
      for (auto& [model, weights] : weight_cache_) weights->Invalidate();
      // Patch EVERY cached context (they all read the one shared encoded
      // instance, so none may survive un-patched), re-pin each sweep.
      // One session-cached pool serves every Apply — no per-batch or
      // per-context thread churn on the streaming append path.
      try {
        exec::ThreadPool* pool = opts_.shared_pool;
        if (pool == nullptr) {
          if (apply_pool_ == nullptr) apply_pool_ = exec::MakePool(opts_.exec);
          pool = apply_pool_.get();
        }
        for (auto& [fp, bucket] : cache_) {
          for (const std::shared_ptr<ContextBundle>& bundle : bucket) {
            FdSearchContext::DeltaReport report =
                bundle->context->ApplyDelta(*encoded_, plan.dirty,
                                            plan.remap, pool);
            bundle->root_delta_p = bundle->context->RootDeltaP();
            bundle->edges = IndexEdges(*bundle->context);
            bundle->bytes = EstimateContextBytes(
                bundle->edges, bundle->context->index().size());
            bundle->sweep->Refresh();
            ++stats.contexts_patched;
            stats.edges_removed += report.index.edges_removed;
            stats.edges_added += report.index.edges_added;
            stats.groups_preserved += report.index.groups_preserved;
            stats.groups_changed += report.index.groups_changed;
            stats.covers_kept += report.evaluator.memo.entries_kept;
            stats.covers_dropped += report.evaluator.memo.entries_dropped;
          }
        }
      } catch (...) {
        // A half-patched cache over the already-mutated instance would be
        // silently wrong (stale tuple ids, unbumped versions). Fall back
        // to consistency over warmth: drop every context and rebuild the
        // active Σ from scratch below.
        patch_failed = true;
        cache_.clear();
      }
    }
    if (patch_failed) {
      stats = ApplyStats{};
      stats.tuples_inserted = static_cast<int>(delta.inserts.size());
      stats.tuples_updated = static_cast<int>(delta.updates.size());
      stats.tuples_deleted = static_cast<int>(delta.deletes.size());
      std::shared_ptr<ContextBundle> fresh =
          BundleFor(active_->sigma);  // fresh over the mutated data
      {
        // CachedContexts reads active_ under mu_; publish likewise.
        std::lock_guard<std::mutex> lock(*mu_);
        active_ = std::move(fresh);
      }
      stats.contexts_patched = 1;
      stats.groups_changed = active_->context->index().size();
    }
    ++data_version_;
    // Deltas grow contexts in place (bundle->bytes was just refreshed), so
    // the byte bound must be re-enforced here, not only on SetFds — an
    // append-heavy tenant would otherwise outgrow it unchecked.
    EvictIfNeeded();
  } catch (const std::exception& e) {
    // Only the in-place instance mutation or the from-scratch fallback can
    // land here (e.g. OOM); the session may be unusable.
    return Status::Error(StatusCode::kInternal, e.what());
  }
  stats.num_tuples = encoded_->NumTuples();
  stats.data_version = data_version_;
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Result<int64_t> Session::ResolveTau(const RepairRequest& req) const {
  // Callers (the request methods) hold the snapshot lock already, so this
  // must use the unlocked root accessor (shared_mutex is non-recursive).
  if (req.tau >= 0) return req.tau;
  if (req.tau_r == -1.0) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "request sets neither tau nor tau_r");
  }
  return CheckedTauFromRelative(req.tau_r, RootDeltaPLocked());
}

ModifyFdsOptions Session::SearchOptions(const RepairRequest& req) const {
  ModifyFdsOptions opts;
  opts.mode = req.mode;
  opts.heuristic = opts_.heuristic;
  opts.policy.policy = req.policy;
  opts.policy.weighting_factor = req.weight;
  opts.policy.initial_upper_bound = req.upper_bound;
  opts.max_visited = req.budget;
  opts.deadline_seconds = req.deadline_seconds;
  opts.cancel = req.cancel;
  opts.phase_trace =
      req.trace != nullptr ? &req.trace->search_phases : nullptr;
  // opts.exec stays serial: SessionOptions::exec parallelizes ACROSS
  // batched requests (and shards context builds), never inside one
  // search — the same composition rule exec::Sweep applies to its jobs.
  return opts;
}

Result<RepairResponse> Session::Repair(const RepairRequest& req) const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  Result<int64_t> tau = ResolveTau(req);
  if (!tau.ok()) return tau.status();
  // Traced requests get a "session" span (under the service span when the
  // request came through the queue) with "search" + "materialize" children;
  // the search span's phase breakdown is filled by the engine via
  // SearchOptions(). Untraced requests skip every clock read below.
  obs::TraceSpan* session_span =
      req.trace != nullptr
          ? req.trace->SessionParent()->StartChild("session")
          : nullptr;
  try {
    Timer timer;
    RepairOptions opts;
    opts.search = SearchOptions(req);
    opts.seed = req.seed;
    RepairOutcome outcome =
        RunRepair(*active_->context, *encoded_, *tau, opts);
    if (session_span != nullptr) {
      const double total = timer.ElapsedSeconds();
      obs::TraceSpan* search_span = session_span->StartChild("search");
      search_span->set_seconds(outcome.stats.seconds);
      obs::AttachSearchPhases(search_span, req.trace->search_phases);
      const double materialize = total - outcome.stats.seconds;
      if (materialize > 0.0) {
        session_span->StartChild("materialize")->set_seconds(materialize);
      }
    }
    if (!outcome.repair.has_value()) {
      if (session_span != nullptr) session_span->Finish();
      return NoRepairStatus(outcome.termination, *tau);
    }
    RepairResponse response;
    response.repair = std::move(*outcome.repair);
    response.tau = *tau;
    response.seconds = timer.ElapsedSeconds();
    response.termination = outcome.termination;
    if (session_span != nullptr) session_span->Finish();
    return response;
  } catch (const std::exception& e) {
    if (session_span != nullptr) session_span->Finish();
    return Status::Error(StatusCode::kInternal, e.what());
  }
}

template <typename Response, typename Job, typename MakeJob, typename RunJobs,
          typename SlotOutcome>
std::vector<Result<Response>> Session::RunBatch(
    std::span<const RepairRequest> reqs, MakeJob make_job, RunJobs run,
    SlotOutcome slot) const {
  std::vector<std::optional<Result<Response>>> slots(reqs.size());
  std::vector<Job> jobs;
  std::vector<size_t> owner;  // job index -> request index
  for (size_t i = 0; i < reqs.size(); ++i) {
    Result<int64_t> tau = ResolveTau(reqs[i]);
    if (!tau.ok()) {
      slots[i].emplace(tau.status());
      continue;
    }
    jobs.push_back(make_job(reqs[i], *tau));
    owner.push_back(i);
  }
  try {
    auto outcomes = run(jobs);
    for (size_t j = 0; j < outcomes.size(); ++j) {
      slots[owner[j]].emplace(slot(std::move(outcomes[j]), jobs[j]));
    }
  } catch (const std::exception& e) {
    for (size_t j : owner) {
      slots[j].emplace(
          Result<Response>(Status::Error(StatusCode::kInternal, e.what())));
    }
  }
  std::vector<Result<Response>> results;
  results.reserve(slots.size());
  for (std::optional<Result<Response>>& s : slots) {
    results.push_back(std::move(*s));
  }
  return results;
}

std::vector<Result<RepairResponse>> Session::RepairMany(
    std::span<const RepairRequest> reqs) const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  return RunBatch<RepairResponse, exec::SweepJob>(
      reqs,
      [this](const RepairRequest& req, int64_t tau) {
        exec::SweepJob job;
        job.tau = tau;
        job.opts.search = SearchOptions(req);
        job.opts.seed = req.seed;
        return job;
      },
      [this](const std::vector<exec::SweepJob>& jobs) {
        return active_->sweep->RunRepairs(jobs);
      },
      [](exec::SweepOutcome out,
         const exec::SweepJob&) -> Result<RepairResponse> {
        if (!out.repair.has_value()) {
          return NoRepairStatus(out.termination, out.tau);
        }
        RepairResponse response;
        response.repair = std::move(*out.repair);
        response.tau = out.tau;
        response.seconds = out.seconds;
        response.termination = out.termination;
        return response;
      });
}

Result<SearchProbe> Session::Search(const RepairRequest& req) const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  Result<int64_t> tau = ResolveTau(req);
  if (!tau.ok()) return tau.status();
  try {
    Timer timer;
    SearchProbe probe;
    probe.tau = *tau;
    probe.result = ModifyFds(*active_->context, *tau, SearchOptions(req));
    probe.seconds = timer.ElapsedSeconds();
    return probe;
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kInternal, e.what());
  }
}

std::vector<Result<SearchProbe>> Session::SearchMany(
    std::span<const RepairRequest> reqs) const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  return RunBatch<SearchProbe, exec::SearchJob>(
      reqs,
      [this](const RepairRequest& req, int64_t tau) {
        exec::SearchJob job;
        job.tau = tau;
        job.opts = SearchOptions(req);
        return job;
      },
      [this](const std::vector<exec::SearchJob>& jobs) {
        return active_->sweep->RunSearches(jobs);
      },
      [](ModifyFdsResult out, const exec::SearchJob& job) -> Result<SearchProbe> {
        SearchProbe probe;
        probe.tau = job.tau;
        probe.seconds = out.stats.seconds;
        probe.result = std::move(out);
        return probe;
      });
}

Result<MultiRepairResult> Session::EnumerateRepairs(int64_t tau_lo,
                                                    int64_t tau_hi) const {
  if (tau_lo < 0 || tau_lo > tau_hi) {
    return Status::Error(StatusCode::kInvalidArgument,
                         "need 0 <= tau_lo <= tau_hi, got [" +
                             std::to_string(tau_lo) + ", " +
                             std::to_string(tau_hi) + "]");
  }
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  try {
    ModifyFdsOptions opts;
    opts.heuristic = opts_.heuristic;
    return FindRepairsFds(*active_->context, tau_lo, tau_hi, opts);
  } catch (const std::exception& e) {
    return Status::Error(StatusCode::kInternal, e.what());
  }
}

uint64_t Session::DataVersion() const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  return data_version_;
}

int Session::NumTuples() const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  return encoded_->NumTuples();
}

int64_t Session::RootDeltaP() const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  return RootDeltaPLocked();
}

const FDSet& Session::fds() const { return active_->sigma; }

const FdSearchContext& Session::context() const { return *active_->context; }

const WeightFunction& Session::weights() const { return *active_->weights; }

uint64_t Session::ContextFingerprint() const {
  std::shared_lock<std::shared_mutex> snapshot(*state_mu_);
  return active_fingerprint_;
}

ContextCacheStats Session::CachedContexts() const {
  std::lock_guard<std::mutex> lock(*mu_);
  ContextCacheStats stats;
  for (const auto& [fp, bucket] : cache_) {
    for (const std::shared_ptr<ContextBundle>& bundle : bucket) {
      CachedContextInfo info;
      info.fingerprint = fp;
      info.active = bundle.get() == active_.get();
      info.hits = bundle->hits;
      info.age = use_clock_ - bundle->last_used;
      info.edges = bundle->edges;
      info.bytes_estimate = bundle->bytes;
      stats.bytes_estimate += bundle->bytes;
      stats.contexts.push_back(info);
      ++stats.cached;
    }
  }
  stats.hits = cache_hits_;
  stats.misses = cache_misses_;
  stats.evictions = cache_evictions_;
  return stats;
}

}  // namespace retrust
