// The public error model of the facade layer (src/api/): a small
// Status/Result<T> pair replacing the exceptions-or-nullopt split the
// internal layers use.
//
// Internal layers (repair/, fd/, relational/) keep their native idioms —
// std::optional for "no such thing", exceptions for programming errors —
// and the facade translates both into Status at the boundary, so callers
// of retrust::Session never need a try/catch and never lose the reason a
// request failed.

#ifndef RETRUST_API_STATUS_H_
#define RETRUST_API_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace retrust {

/// Canonical error space of the public API.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument,     ///< malformed request (τr out of range, no τ set, ...)
  kInvalidFd,           ///< an FD failed to parse or is trivial
  kSchemaMismatch,      ///< an FD references attributes outside the schema
  kNoRepairWithinTau,   ///< Algorithm 2 proved no relaxation fits the budget
  kBudgetExceeded,      ///< visit budget or deadline expired before an answer
  kCancelled,           ///< the request's CancelToken fired
  kIoError,             ///< dataset/snapshot could not be read/written
  kVersionMismatch,     ///< a snapshot/journal was written by an
                        ///< incompatible format version
  kOverloaded,          ///< the service shed the request (queue full,
                        ///< tenant cap, or deadline-infeasible load)
  kInternal,            ///< an internal-layer exception escaped (bug)
};

/// Stable lowercase name of a code, e.g. "invalid_fd".
const char* StatusCodeName(StatusCode code);

/// An error code plus a human-readable message. Default-constructed and
/// Ok() statuses compare ok(); everything else carries a nonempty reason.
class Status {
 public:
  Status() = default;

  static Status Ok() { return Status(); }
  static Status Error(StatusCode code, std::string message) {
    assert(code != StatusCode::kOk);
    return Status(code, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "invalid_fd: bad FD ..." (or "ok").
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or the Status explaining its absence. Implicitly
/// constructible from both, so functions `return value;` on success and
/// `return Status::Error(...);` on failure.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT: same
    assert(!status_.ok() && "ok Result must carry a value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Value access requires ok() — checked in debug builds.
  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace retrust

#endif  // RETRUST_API_STATUS_H_
