// retrust::Session — the library's public entry point.
//
// Algorithm 1 is a service-shaped computation: one τ-independent context
// (conflict graph, difference-set index, violation table, cover memo)
// answers many (τ, options) repair requests. A Session owns that shape so
// callers do not wire it by hand: it holds the dataset and Σ, builds the
// FdSearchContext lazily per (Σ, weights, heuristic, exec) fingerprint, and
// keeps every context it ever built in a cache — switching Σ back and forth
// (SetFds) reuses the warm violation table and cover memo exactly like the
// τ jobs of an exec::Sweep do.
//
// All failures surface through the Status/Result<T> model (status.h); the
// facade translates internal exceptions and optionals at the boundary, so
// Session callers never need a try/catch.
//
// Layering (DESIGN.md "Public API layering"): api/ sits on top of repair/
// and exec/'s Sweep scheduler; everything below api/ stays exception/
// optional-based and remains the internal layer the facade calls.
//
// Thread safety: const methods (Repair, RepairMany, Search, ...) are safe
// to call concurrently — batched requests additionally fan out on the
// session's own exec::Sweep pool. The mutating methods (SetFds, SetWeights)
// require external exclusion against everything else, like any C++ object.

#ifndef RETRUST_API_SESSION_H_
#define RETRUST_API_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "src/api/status.h"
#include "src/exec/cancel.h"
#include "src/exec/sweep.h"
#include "src/repair/multi_repair.h"

namespace retrust {

/// Which w(Y) weighting the session's distc uses (weights.h).
enum class WeightModel { kDistinctCount, kCardinality, kEntropy };

/// Session-wide configuration, part of the context-cache fingerprint.
struct SessionOptions {
  WeightModel weights = WeightModel::kDistinctCount;
  HeuristicOptions heuristic;
  /// Shards context construction AND sizes the pool batched requests
  /// (RepairMany/SearchMany) fan out on. Results are bit-identical for any
  /// thread count (DESIGN.md).
  exec::Options exec;
};

/// One repair request. Exactly one of `tau` (absolute cell-change budget)
/// or `tau_r` (relative trust in [0, 1], resolved against the session's
/// root δP) must be set; use At()/AtRelative().
struct RepairRequest {
  int64_t tau = -1;     ///< absolute τ; negative = use tau_r
  double tau_r = -1.0;  ///< relative τr; ignored when tau >= 0
  SearchMode mode = SearchMode::kAStar;
  uint64_t seed = 1;    ///< drives Algorithm 4's random orders
  /// Visit budget for the search (0 = unlimited). Exceeding it without a
  /// repair fails the request with kBudgetExceeded.
  int64_t budget = 0;
  /// Wall-clock deadline in seconds (0 = none); kBudgetExceeded on expiry.
  double deadline_seconds = 0.0;
  /// Optional cooperative cancellation; kCancelled when it fires first.
  /// Not owned — must outlive the request's execution.
  const exec::CancelToken* cancel = nullptr;

  static RepairRequest At(int64_t tau) {
    RepairRequest r;
    r.tau = tau;
    return r;
  }
  static RepairRequest AtRelative(double tau_r) {
    RepairRequest r;
    r.tau_r = tau_r;
    return r;
  }
};

/// A successful end-to-end repair (Algorithm 1).
struct RepairResponse {
  Repair repair;        ///< (Σ', I') plus stats (repair.stats)
  int64_t tau = 0;      ///< the resolved absolute τ this ran at
  double seconds = 0.0; ///< wall-clock of this request
  /// Why the search stopped. Only kCompleted guarantees the repair is
  /// cost-minimal; a budget/deadline/cancel interruption that already
  /// held a τ-feasible repair returns it with the interruption recorded
  /// here, so truncated answers are detectable.
  SearchTermination termination = SearchTermination::kCompleted;
};

/// A search probe (Algorithm 2 only, no data materialization): the
/// diagnostic/benchmark companion to Repair(). A probe REPORTS whatever
/// the search did — "no relaxation fits τ", a budget cut, a cancellation —
/// through `result.repair`/`result.termination` and always carries the
/// stats; only a malformed request fails the Result.
struct SearchProbe {
  ModifyFdsResult result;
  int64_t tau = 0;
  double seconds = 0.0;
};

/// τ = round(τr · root_delta_p), rejecting what TauFromRelative clamps:
/// τr outside [0, 1] (or NaN) and a negative root bound come back as
/// kInvalidArgument. root_delta_p == 0 maps every valid τr to 0.
Result<int64_t> CheckedTauFromRelative(double tau_r, int64_t root_delta_p);

class Session {
 public:
  /// Opens a session over `data` with a pre-built Σ. Fails with
  /// kSchemaMismatch when an FD references attributes outside the schema
  /// and kInvalidFd when one is trivial (A ∈ X). Builds the initial
  /// context eagerly, so RootDeltaP() is immediately available.
  static Result<Session> Open(Instance data, FDSet sigma,
                              SessionOptions opts = {});

  /// Same, parsing Σ from texts like {"City->Zip"}; parse failures come
  /// back as kInvalidFd.
  static Result<Session> Open(Instance data,
                              const std::vector<std::string>& fd_texts,
                              SessionOptions opts = {});

  /// Same, reading the dataset from a CSV file (kIoError on failure).
  static Result<Session> OpenCsv(const std::string& path,
                                 const std::vector<std::string>& fd_texts,
                                 SessionOptions opts = {});

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Switches the active Σ (validated like Open). A fingerprint seen
  /// before — including the one Open built — reuses its cached context,
  /// warm cover memo included.
  Status SetFds(FDSet sigma);
  Status SetFds(const std::vector<std::string>& fd_texts);

  /// Switches the weight model (same context-cache semantics as SetFds).
  Status SetWeights(WeightModel weights);

  /// Algorithm 1 at the request's τ. Error codes: kInvalidArgument (no τ,
  /// τr out of range), kNoRepairWithinTau, kBudgetExceeded, kCancelled.
  /// An interrupted request that already holds a τ-feasible repair returns
  /// it (the repair is valid, possibly not cost-minimal).
  Result<RepairResponse> Repair(const RepairRequest& req) const;

  /// Batched Algorithm 1: all requests run concurrently on the session's
  /// exec::Sweep over the one shared context; outcomes in request order.
  std::vector<Result<RepairResponse>> RepairMany(
      std::span<const RepairRequest> reqs) const;

  /// Algorithm 2 probe (no data repair pass); see SearchProbe.
  Result<SearchProbe> Search(const RepairRequest& req) const;

  /// Batched probes through the same sweep scheduler, in request order.
  std::vector<Result<SearchProbe>> SearchMany(
      std::span<const RepairRequest> reqs) const;

  /// Algorithm 6 (Range-Repair): every distinct minimal FD repair for
  /// τ ∈ [tau_lo, tau_hi]. kInvalidArgument unless 0 <= tau_lo <= tau_hi.
  Result<MultiRepairResult> EnumerateRepairs(int64_t tau_lo,
                                             int64_t tau_hi) const;

  /// δP(Σ, I) of the active Σ — the root bound; τr = 1 resolves to this.
  int64_t RootDeltaP() const;

  const Instance& instance() const { return *instance_; }
  const Schema& schema() const { return instance_->schema(); }
  const FDSet& fds() const;
  const SessionOptions& options() const { return opts_; }

  /// Fingerprint of the active (Σ, weights, heuristic, exec) context and
  /// the number of distinct contexts this session has built — observable
  /// cache behavior for tests and ops dashboards.
  uint64_t ContextFingerprint() const;
  size_t CachedContexts() const;

  /// Internal-layer escape hatches for the eval/ harness and benchmarks:
  /// the encoded dataset, the active search context, and its weights.
  /// Everything reachable from here is const and thread-safe, but the
  /// types are NOT part of the stable facade surface.
  const EncodedInstance& data() const { return *encoded_; }
  const FdSearchContext& context() const;
  const WeightFunction& weights() const;

 private:
  /// One cached context: Σ plus everything derived from it. The weight
  /// function is shared across bundles of the same model (its memo is
  /// instance-wide), the sweep reuses one pool across batched calls.
  struct ContextBundle {
    FDSet sigma;
    const WeightFunction* weights = nullptr;  ///< owned by weight_cache_
    std::unique_ptr<FdSearchContext> context;
    std::unique_ptr<exec::Sweep> sweep;
    int64_t root_delta_p = 0;
  };

  Session(Instance data, SessionOptions opts);

  Status Validate(const FDSet& sigma) const;
  const WeightFunction& WeightFor(WeightModel model);
  /// Returns the cached bundle for (sigma, opts_) or builds and caches it.
  std::shared_ptr<ContextBundle> BundleFor(FDSet sigma);
  Result<int64_t> ResolveTau(const RepairRequest& req) const;
  ModifyFdsOptions SearchOptions(const RepairRequest& req) const;

  /// Shared skeleton of RepairMany/SearchMany: resolve every request's τ
  /// (invalid ones fail their slot without running), run the valid jobs
  /// through the sweep, re-slot outcomes in request order; an escaped
  /// internal exception fails the affected slots with kInternal.
  template <typename Response, typename Job, typename MakeJob,
            typename RunJobs, typename SlotOutcome>
  std::vector<Result<Response>> RunBatch(std::span<const RepairRequest> reqs,
                                         MakeJob make_job, RunJobs run,
                                         SlotOutcome slot) const;

  std::unique_ptr<Instance> instance_;        ///< heap-pinned: encoded_ is
  std::unique_ptr<EncodedInstance> encoded_;  ///< referenced by weights
  SessionOptions opts_;
  std::map<int, std::unique_ptr<WeightFunction>> weight_cache_;
  uint64_t active_fingerprint_ = 0;
  std::shared_ptr<ContextBundle> active_;
  /// Guards cache_ (BundleFor may be reached from const batched paths in
  /// future extensions); heap-pinned so Session stays movable.
  std::unique_ptr<std::mutex> mu_;
  /// Buckets keyed by the raw fingerprint; entries within a bucket are
  /// disambiguated by Σ/weights equality, so erasing any entry (the
  /// ROADMAP's eviction follow-on) can never orphan another.
  std::map<uint64_t, std::vector<std::shared_ptr<ContextBundle>>> cache_;
};

}  // namespace retrust

#endif  // RETRUST_API_SESSION_H_
