// retrust::Session — the library's public entry point.
//
// Algorithm 1 is a service-shaped computation: one τ-independent context
// (conflict graph, difference-set index, violation table, cover memo)
// answers many (τ, options) repair requests. A Session owns that shape so
// callers do not wire it by hand: it holds the dataset and Σ, builds the
// FdSearchContext lazily per (Σ, weights, heuristic, exec) fingerprint, and
// keeps every context it ever built in a cache — switching Σ back and forth
// (SetFds) reuses the warm violation table and cover memo exactly like the
// τ jobs of an exec::Sweep do.
//
// All failures surface through the Status/Result<T> model (status.h); the
// facade translates internal exceptions and optionals at the boundary, so
// Session callers never need a try/catch.
//
// Layering (DESIGN.md "Public API layering"): api/ sits on top of repair/
// and exec/'s Sweep scheduler; everything below api/ stays exception/
// optional-based and remains the internal layer the facade calls.
//
// Thread safety: const methods (Repair, RepairMany, Search, ...) are safe
// to call concurrently — batched requests additionally fan out on the
// session's own exec::Sweep pool. Apply() may ALSO run concurrently with
// the const request methods: requests take a shared snapshot lock and a
// delta takes it exclusively, so every request observes either the whole
// pre-delta or the whole post-delta state, never a mix (the exec::Sweep
// version pin double-checks this). The remaining mutating methods
// (SetFds, SetWeights) require external exclusion against everything
// else, like any C++ object.

#ifndef RETRUST_API_SESSION_H_
#define RETRUST_API_SESSION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "src/api/status.h"
#include "src/exec/cancel.h"
#include "src/exec/sweep.h"
#include "src/obs/trace.h"
#include "src/persist/journal.h"
#include "src/relational/delta.h"
#include "src/repair/multi_repair.h"
#include "src/search/policy.h"

namespace retrust {

/// Which w(Y) weighting the session's distc uses (weights.h).
enum class WeightModel { kDistinctCount, kCardinality, kEntropy };

/// Session-wide configuration, part of the context-cache fingerprint.
struct SessionOptions {
  WeightModel weights = WeightModel::kDistinctCount;
  HeuristicOptions heuristic;
  /// Shards context construction AND sizes the pool batched requests
  /// (RepairMany/SearchMany) fan out on. Results are bit-identical for any
  /// thread count (DESIGN.md).
  exec::Options exec;
  /// Upper bound on cached FdSearchContexts (0 = unbounded). When SetFds/
  /// SetWeights would push the cache past the bound, the least-recently
  /// used non-active context is evicted (size+age LRU); revisiting an
  /// evicted fingerprint rebuilds it. Not part of the context fingerprint.
  size_t max_cached_contexts = 0;
  /// Byte-accurate companion bound (0 = unbounded): each cached context is
  /// weighed by its difference-set EDGE COUNT (edge storage dominates a
  /// context's footprint) instead of counting 1, and LRU eviction runs
  /// until the estimated total fits. Both bounds may be set; the active
  /// context is always exempt. Not part of the context fingerprint.
  size_t max_cached_bytes = 0;
  /// Optional externally-owned pool (nullable) the session's sweeps and
  /// Apply() schedule on instead of spawning private workers — a process
  /// holding many sessions (one per tenant, src/service/) shares ONE pool
  /// across all of them. Must outlive the session. Not part of the
  /// context fingerprint.
  exec::ThreadPool* shared_pool = nullptr;
};

/// One row of ContextCacheStats::contexts: per-context observability, so a
/// server's per-tenant stats can report WHAT is warm, not just how much.
struct CachedContextInfo {
  uint64_t fingerprint = 0;   ///< the (Σ, weights, heuristic, exec) key
  bool active = false;        ///< the session's live context (never evicted)
  uint64_t hits = 0;          ///< times BundleFor returned this context
  /// LRU age in use-clock ticks (0 = touched most recently); grows by one
  /// per context switch, so it is deterministic, unlike wall-clock.
  uint64_t age = 0;
  int64_t edges = 0;          ///< conflict edges in the difference-set index
  size_t bytes_estimate = 0;  ///< edge-weighted memory estimate
};

/// Observable context-cache behavior (tests and ops dashboards).
struct ContextCacheStats {
  size_t cached = 0;      ///< contexts currently held
  uint64_t hits = 0;      ///< BundleFor answered from the cache
  uint64_t misses = 0;    ///< contexts built
  uint64_t evictions = 0; ///< contexts dropped by the LRU bounds
  size_t bytes_estimate = 0;  ///< total estimate over cached contexts
  std::vector<CachedContextInfo> contexts;  ///< one row per cached context
};

/// What one Session::Apply did — the delta's blast radius vs what stayed
/// warm. `reuse_ratio` close to 1 is the incremental engine's win: the
/// fraction of the contexts' difference-set groups that survived the delta
/// untouched (their incidence rows and cached covers were carried over).
struct ApplyStats {
  int tuples_inserted = 0;
  int tuples_updated = 0;   ///< update entries applied (cells, not tuples)
  int tuples_deleted = 0;
  int num_tuples = 0;       ///< post-delta cardinality
  uint64_t data_version = 0;  ///< post-delta Session::DataVersion()
  int contexts_patched = 0;   ///< cached contexts delta-maintained in place
  int64_t edges_removed = 0;  ///< conflict edges dropped across contexts
  int64_t edges_added = 0;    ///< conflict edges discovered across contexts
  int groups_preserved = 0;   ///< diff-set groups carried over untouched
  int groups_changed = 0;     ///< diff-set groups rebuilt or new
  size_t covers_kept = 0;     ///< memoized covers remapped and kept warm
  size_t covers_dropped = 0;  ///< memoized covers invalidated
  double seconds = 0.0;       ///< wall-clock of the whole Apply

  double reuse_ratio() const {
    int total = groups_preserved + groups_changed;
    return total == 0 ? 1.0
                      : static_cast<double>(groups_preserved) / total;
  }
};

/// One repair request. Exactly one of `tau` (absolute cell-change budget)
/// or `tau_r` (relative trust in [0, 1], resolved against the session's
/// root δP) must be set; use At()/AtRelative().
struct RepairRequest {
  int64_t tau = -1;     ///< absolute τ; negative = use tau_r
  double tau_r = -1.0;  ///< relative τr; ignored when tau >= 0
  SearchMode mode = SearchMode::kAStar;
  /// Engine policy for the FD search (src/search/policy.h): kExact (the
  /// default — Algorithm 2's optimality guarantee), kAnytime (weighted-A*,
  /// first repair fast, refined until interrupted), or kGreedy. The
  /// quality-vs-time knob of the service wire ("policy"/"weight" fields).
  search::SearchPolicy policy = search::SearchPolicy::kExact;
  /// Weighted-A* factor w >= 1 (kAnytime only): first incumbent costs at
  /// most w·optimal.
  double weight = 2.0;
  /// Known cost cap for kAnytime/kGreedy pruning (0 = none).
  double upper_bound = 0.0;
  uint64_t seed = 1;    ///< drives Algorithm 4's random orders
  /// Visit budget for the search (0 = unlimited). Exceeding it without a
  /// repair fails the request with kBudgetExceeded.
  int64_t budget = 0;
  /// Wall-clock deadline in seconds (0 = none); kBudgetExceeded on expiry.
  double deadline_seconds = 0.0;
  /// Optional cooperative cancellation; kCancelled when it fires first.
  /// Not owned — must outlive the request's execution.
  const exec::CancelToken* cancel = nullptr;
  /// Per-request trace (src/obs/trace.h). Null (the default) disables
  /// tracing entirely; when set, the Session attaches session/search
  /// spans and the engine fills the phase accumulators. Shared so the
  /// trace survives the request being copied into service closures.
  std::shared_ptr<obs::RequestTrace> trace;

  static RepairRequest At(int64_t tau) {
    RepairRequest r;
    r.tau = tau;
    return r;
  }
  static RepairRequest AtRelative(double tau_r) {
    RepairRequest r;
    r.tau_r = tau_r;
    return r;
  }
};

/// A successful end-to-end repair (Algorithm 1).
struct RepairResponse {
  Repair repair;        ///< (Σ', I') plus stats (repair.stats)
  int64_t tau = 0;      ///< the resolved absolute τ this ran at
  double seconds = 0.0; ///< wall-clock of this request
  /// Why the search stopped. Only kCompleted guarantees the repair is
  /// cost-minimal; a budget/deadline/cancel interruption that already
  /// held a τ-feasible repair returns it with the interruption recorded
  /// here, so truncated answers are detectable.
  SearchTermination termination = SearchTermination::kCompleted;
};

/// A search probe (Algorithm 2 only, no data materialization): the
/// diagnostic/benchmark companion to Repair(). A probe REPORTS whatever
/// the search did — "no relaxation fits τ", a budget cut, a cancellation —
/// through `result.repair`/`result.termination` and always carries the
/// stats; only a malformed request fails the Result.
struct SearchProbe {
  ModifyFdsResult result;
  int64_t tau = 0;
  double seconds = 0.0;
};

/// τ = round(τr · root_delta_p), rejecting what TauFromRelative clamps:
/// τr outside [0, 1] (or NaN) and a negative root bound come back as
/// kInvalidArgument. root_delta_p == 0 maps every valid τr to 0.
Result<int64_t> CheckedTauFromRelative(double tau_r, int64_t root_delta_p);

class Session {
 public:
  /// Opens a session over `data` with a pre-built Σ. Fails with
  /// kSchemaMismatch when an FD references attributes outside the schema
  /// and kInvalidFd when one is trivial (A ∈ X). Builds the initial
  /// context eagerly, so RootDeltaP() is immediately available.
  static Result<Session> Open(Instance data, FDSet sigma,
                              SessionOptions opts = {});

  /// Same, parsing Σ from texts like {"City->Zip"}; parse failures come
  /// back as kInvalidFd.
  static Result<Session> Open(Instance data,
                              const std::vector<std::string>& fd_texts,
                              SessionOptions opts = {});

  /// Same, reading the dataset from a CSV file (kIoError on failure).
  static Result<Session> OpenCsv(const std::string& path,
                                 const std::vector<std::string>& fd_texts,
                                 SessionOptions opts = {});

  /// Opens a session from a snapshot file (src/persist/), adopting the
  /// saved dataset, Σ, difference-set index, and warm caches instead of
  /// paying the O(n²) context build — answers are bit-identical to a
  /// session opened from the original data, at any thread count (the
  /// snapshot fingerprint deliberately excludes `opts.exec`). The caller's
  /// (weights, heuristic) must match what the snapshot was saved under:
  /// mismatch → kSchemaMismatch. Unreadable/corrupt → kIoError; a format
  /// version this build does not speak → kVersionMismatch. Never throws
  /// and never crashes on hostile bytes.
  static Result<Session> OpenSnapshot(const std::string& path,
                                      SessionOptions opts = {});

  /// Saves the live dataset plus the ACTIVE context's warm state to
  /// `path`. Safe against concurrent const requests (takes the snapshot
  /// lock shared — a concurrent Apply is excluded, so the file is a
  /// consistent cut at one DataVersion()).
  Status SaveSnapshot(const std::string& path) const;

  /// Attaches an append-only delta journal: every subsequent successful
  /// Apply() first logs its batch to `path` (write-ahead), so a loader can
  /// rebuild this session as base snapshot + replay. An existing journal
  /// is continued iff its fingerprint matches this session's configuration
  /// (else kSchemaMismatch) and its base_version + records == DataVersion()
  /// (else kInvalidArgument — replay it first); a missing/empty file
  /// starts a fresh journal based at the current DataVersion(). A torn
  /// trailing record from a crashed append is truncated, not fatal.
  Status EnableJournal(const std::string& path);

  /// Replays every batch of a journal through Apply(), in order, and
  /// returns how many were applied. The journal must extend THIS state:
  /// fingerprint and base DataStamp must match (else kSchemaMismatch) and
  /// base_version must equal DataVersion() (else kInvalidArgument).
  /// Refused while a journal is attached (kInvalidArgument): replay first,
  /// then EnableJournal, so replayed batches are never re-logged.
  Result<int> ReplayJournal(const std::string& path);

  Session(Session&&) = default;
  Session& operator=(Session&&) = default;
  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Switches the active Σ (validated like Open). A fingerprint seen
  /// before — including the one Open built — reuses its cached context,
  /// warm cover memo included.
  Status SetFds(FDSet sigma);
  Status SetFds(const std::vector<std::string>& fd_texts);

  /// Switches the weight model (same context-cache semantics as SetFds).
  Status SetWeights(WeightModel weights);

  /// Applies a batch of tuple inserts/updates/deletes to the live dataset
  /// and delta-maintains EVERY cached context in place: the difference-set
  /// index only re-examines pairs with a mutated endpoint (O(Δ·n) instead
  /// of the O(n²) rebuild), preserved groups keep their violation-table
  /// rows and their memoized covers, and each context's version is bumped
  /// so its sweep re-pins the new snapshot. A repair issued right after an
  /// Apply therefore reuses everything outside the delta's blast radius.
  /// Post-delta answers are bit-identical to a session freshly opened over
  /// the mutated data. Safe to call concurrently with the const request
  /// methods (it takes the snapshot lock exclusively; in-flight requests
  /// drain first); needs external exclusion only against SetFds/
  /// SetWeights. kInvalidArgument on out-of-range ids, duplicate deletes,
  /// or arity mismatches — validation happens before anything mutates.
  Result<ApplyStats> Apply(const DeltaBatch& delta);

  /// Monotone dataset version: bumped by every non-empty successful
  /// Apply(). Contexts cached by SetFds always reflect the live version.
  /// Safe against a concurrent Apply (reads under the snapshot lock).
  uint64_t DataVersion() const;

  /// Live cardinality, safe against a concurrent Apply (reads under the
  /// snapshot lock) — unlike instance().NumTuples(), which is not.
  int NumTuples() const;

  /// Algorithm 1 at the request's τ. Error codes: kInvalidArgument (no τ,
  /// τr out of range), kNoRepairWithinTau, kBudgetExceeded, kCancelled.
  /// An interrupted request that already holds a τ-feasible repair returns
  /// it (the repair is valid, possibly not cost-minimal).
  Result<RepairResponse> Repair(const RepairRequest& req) const;

  /// Batched Algorithm 1: all requests run concurrently on the session's
  /// exec::Sweep over the one shared context; outcomes in request order.
  std::vector<Result<RepairResponse>> RepairMany(
      std::span<const RepairRequest> reqs) const;

  /// Algorithm 2 probe (no data repair pass); see SearchProbe.
  Result<SearchProbe> Search(const RepairRequest& req) const;

  /// Batched probes through the same sweep scheduler, in request order.
  std::vector<Result<SearchProbe>> SearchMany(
      std::span<const RepairRequest> reqs) const;

  /// Algorithm 6 (Range-Repair): every distinct minimal FD repair for
  /// τ ∈ [tau_lo, tau_hi]. kInvalidArgument unless 0 <= tau_lo <= tau_hi.
  Result<MultiRepairResult> EnumerateRepairs(int64_t tau_lo,
                                             int64_t tau_hi) const;

  /// δP(Σ, I) of the active Σ — the root bound; τr = 1 resolves to this.
  /// Safe against a concurrent Apply (reads under the snapshot lock).
  int64_t RootDeltaP() const;

  /// Reference-returning accessors. The references stay valid for the
  /// session's lifetime, but the pointed-to state is delta-maintained IN
  /// PLACE by Apply() — reading through them concurrently with an Apply
  /// is not synchronized. The value-returning observers (DataVersion,
  /// RootDeltaP, ContextFingerprint, CachedContexts) and the request
  /// methods are the Apply-concurrency-safe surface.
  const Instance& instance() const { return *instance_; }
  const Schema& schema() const { return instance_->schema(); }
  const FDSet& fds() const;
  const SessionOptions& options() const { return opts_; }

  /// Fingerprint of the active (Σ, weights, heuristic, exec) context and
  /// the cache's observable behavior (current size, hits, misses,
  /// evictions) for tests and ops dashboards. Both are safe against a
  /// concurrent Apply.
  uint64_t ContextFingerprint() const;
  ContextCacheStats CachedContexts() const;

  /// Internal-layer escape hatches for the eval/ harness and benchmarks:
  /// the encoded dataset, the active search context, and its weights.
  /// Everything reachable from here is const and thread-safe against
  /// other const calls (NOT against Apply — see above), and the types
  /// are NOT part of the stable facade surface.
  const EncodedInstance& data() const { return *encoded_; }
  const FdSearchContext& context() const;
  const WeightFunction& weights() const;

 private:
  /// One cached context: Σ plus everything derived from it. The weight
  /// function is shared across bundles of the same model (its memo is
  /// instance-wide), the sweep reuses one pool across batched calls.
  struct ContextBundle {
    FDSet sigma;
    const WeightFunction* weights = nullptr;  ///< owned by weight_cache_
    std::unique_ptr<FdSearchContext> context;
    std::unique_ptr<exec::Sweep> sweep;
    int64_t root_delta_p = 0;
    uint64_t last_used = 0;  ///< LRU ordinal (session use_clock_)
    uint64_t hits = 0;       ///< BundleFor cache hits on this bundle
    int64_t edges = 0;       ///< difference-set edge count (sizing weight)
    size_t bytes = 0;        ///< edge-weighted estimate; kept fresh by Apply
  };

  Session(Instance data, SessionOptions opts);
  /// Restore path (OpenSnapshot): adopts a saved EncodedInstance directly
  /// instead of re-encoding `data` — re-encoding would reset the
  /// fresh-variable counters, breaking bit-identical variable allocation
  /// in post-restore repairs.
  Session(Instance data, EncodedInstance encoded, SessionOptions opts);

  /// Installs a restored context as the active bundle (OpenSnapshot's
  /// counterpart of BundleFor): validates Σ, rebuilds the sweep, and
  /// self-checks the restored root δP against the snapshot's
  /// (mismatch → kIoError, the file lied about its own content).
  Status AdoptContext(FDSet sigma, DifferenceSetIndex index,
                      DeltaPEvaluator::WarmState warm,
                      int64_t expected_root_delta_p);

  Status Validate(const FDSet& sigma) const;
  const WeightFunction& WeightFor(WeightModel model);
  /// RootDeltaP for callers already holding the snapshot lock (request
  /// methods; shared_mutex is non-recursive, so they must not re-lock).
  int64_t RootDeltaPLocked() const { return active_->root_delta_p; }
  /// Returns the cached bundle for (sigma, opts_) or builds and caches it,
  /// touching its LRU slot.
  std::shared_ptr<ContextBundle> BundleFor(FDSet sigma);
  /// Drops least-recently-used bundles (never the active one) until the
  /// cache respects max_cached_contexts AND the edge-weighted
  /// max_cached_bytes bound. Runs after every active-context switch;
  /// evicted fingerprints rebuild on their next use.
  void EvictIfNeeded();
  Result<int64_t> ResolveTau(const RepairRequest& req) const;
  ModifyFdsOptions SearchOptions(const RepairRequest& req) const;

  /// Shared skeleton of RepairMany/SearchMany: resolve every request's τ
  /// (invalid ones fail their slot without running), run the valid jobs
  /// through the sweep, re-slot outcomes in request order; an escaped
  /// internal exception fails the affected slots with kInternal.
  template <typename Response, typename Job, typename MakeJob,
            typename RunJobs, typename SlotOutcome>
  std::vector<Result<Response>> RunBatch(std::span<const RepairRequest> reqs,
                                         MakeJob make_job, RunJobs run,
                                         SlotOutcome slot) const;

  std::unique_ptr<Instance> instance_;        ///< heap-pinned: encoded_ is
  std::unique_ptr<EncodedInstance> encoded_;  ///< referenced by weights
  SessionOptions opts_;
  std::map<int, std::unique_ptr<WeightFunction>> weight_cache_;
  uint64_t active_fingerprint_ = 0;
  std::shared_ptr<ContextBundle> active_;
  /// Guards cache_ and the LRU/hit counters (BundleFor may be reached
  /// from const batched paths in future extensions); heap-pinned so
  /// Session stays movable.
  std::unique_ptr<std::mutex> mu_;
  /// Snapshot lock: request methods hold it shared for their whole run,
  /// Apply holds it exclusively while mutating the instance and patching
  /// contexts — so a delta can never interleave with a request.
  std::unique_ptr<std::shared_mutex> state_mu_;
  /// Buckets keyed by the raw fingerprint; entries within a bucket are
  /// disambiguated by Σ/weights equality, so erasing any entry (LRU
  /// eviction) can never orphan another.
  std::map<uint64_t, std::vector<std::shared_ptr<ContextBundle>>> cache_;
  /// Lazily created, reused across Apply calls (which the exclusive
  /// snapshot lock serializes) — streaming small deltas pays no per-batch
  /// thread churn. Null until the first parallel Apply.
  std::unique_ptr<exec::ThreadPool> apply_pool_;
  /// Write-ahead delta journal (EnableJournal); Apply logs each batch
  /// before mutating. Guarded by the exclusive snapshot lock.
  std::unique_ptr<persist::JournalWriter> journal_;
  uint64_t data_version_ = 1;
  uint64_t use_clock_ = 0;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t cache_evictions_ = 0;
};

}  // namespace retrust

#endif  // RETRUST_API_SESSION_H_
