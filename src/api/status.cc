#include "src/api/status.h"

namespace retrust {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kInvalidArgument: return "invalid_argument";
    case StatusCode::kInvalidFd: return "invalid_fd";
    case StatusCode::kSchemaMismatch: return "schema_mismatch";
    case StatusCode::kNoRepairWithinTau: return "no_repair_within_tau";
    case StatusCode::kBudgetExceeded: return "budget_exceeded";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kIoError: return "io_error";
    case StatusCode::kVersionMismatch: return "version_mismatch";
    case StatusCode::kOverloaded: return "overloaded";
    case StatusCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace retrust
