#include "src/search/engine.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_map>

#include "src/exec/thread_pool.h"
#include "src/obs/trace.h"
#include "src/search/bound.h"
#include "src/util/timer.h"

namespace retrust::search {

namespace {

// Open-list entry. gc evaluation is LAZY: children are pushed with their
// parent's priority as a lower bound (gc is monotone along tree edges —
// a child's descendants are a subset of its parent's) and get their own
// gc computed only when they reach the top of the heap. This cuts gc
// evaluations from O(states generated) to O(states visited).
//
// `priority` is the policy's ORDER KEY: f = max(gc, cost) for exact,
// cost + w·(f − cost) for anytime, f − cost for greedy. Lazy entries hold
// a lower bound of their true key (every key form is monotone in f, so a
// lower bound of f maps to a lower bound of the key); `evaluated` marks
// keys that are final.
struct OpenEntry {
  double priority;   // policy order key; a lower bound until `evaluated`
  double cost;       // cost(S), for tie-breaking
  int64_t seq;       // FIFO tie-break for determinism
  bool evaluated;    // true once priority is the entry's exact key
  SearchState state;

  bool operator<(const OpenEntry& o) const {
    // std::priority_queue is a max-heap; invert.
    if (priority != o.priority) return priority > o.priority;
    if (cost != o.cost) return cost > o.cost;
    return seq > o.seq;
  }
};

// Speculative successor evaluator for the parallel engine.
//
// gc(S) and |C2opt(S)| are pure functions of (state, τ), so evaluating
// them EARLY — at expansion time, for a popped state's LHS-extensions
// concurrently, each child on pooled scratch owned by the context's
// evaluation layer — and handing the memoized values to the unmodified
// lazy search loop later produces the exact serial visit order and result
// for any thread count. Speculation trades extra evaluations (children
// that never reach the top of the heap) for wall-clock parallelism; the
// serial path (no pool) skips it entirely and keeps the lazy O(visited)
// evaluation count.
class SuccessorEvaluator {
 public:
  SuccessorEvaluator(const FdSearchContext& ctx, int64_t tau, bool astar,
                     exec::ThreadPool* pool)
      : ctx_(ctx), tau_(tau), astar_(astar), pool_(pool) {}

  bool active() const { return pool_ != nullptr; }

  /// Evaluates gc (A*) and δP of the flagged children concurrently and
  /// memoizes the values. Stats of the evaluations are merged into `stats`
  /// in child order (deterministic totals).
  void Speculate(const std::vector<SearchState>& children,
                 const std::vector<char>& keep, SearchStats* stats) {
    if (!active() || children.empty()) return;
    std::vector<Entry> results(children.size());
    exec::TaskGroup group(pool_);
    for (size_t i = 0; i < children.size(); ++i) {
      if (!keep[i]) continue;
      const SearchState& child = children[i];
      Entry* out = &results[i];
      group.Run([this, &child, out] {
        if (astar_) {
          out->gc = ctx_.heuristic().Compute(child, tau_, &out->stats);
          if (out->gc == GcHeuristic::kInfinity) return;  // never visited
        }
        out->cover = ctx_.CoverSize(child, &out->stats);
      });
    }
    group.Wait();
    for (size_t i = 0; i < children.size(); ++i) {
      if (!keep[i]) continue;
      stats->Accumulate(results[i].stats);
      results[i].stats = SearchStats{};
      cache_.emplace(children[i], results[i]);
    }
  }

  /// gc(s): memoized value if speculated, computed inline otherwise.
  double Gc(const SearchState& s, SearchStats* stats) {
    auto it = cache_.find(s);
    if (it != cache_.end()) {
      double gc = it->second.gc;
      if (gc == GcHeuristic::kInfinity) cache_.erase(it);  // discarded next
      return gc;
    }
    return ctx_.heuristic().Compute(s, tau_, stats);
  }

  /// |C2opt(s)|: memoized value if speculated, computed inline otherwise.
  int64_t Cover(const SearchState& s, SearchStats* stats) {
    auto it = cache_.find(s);
    if (it != cache_.end() && it->second.cover >= 0) {
      int64_t cover = it->second.cover;
      cache_.erase(it);  // a state is visited at most once
      return cover;
    }
    return ctx_.CoverSize(s, stats);
  }

 private:
  struct Entry {
    double gc = 0.0;
    int64_t cover = -1;
    SearchStats stats;
  };

  const FdSearchContext& ctx_;
  int64_t tau_;
  bool astar_;
  exec::ThreadPool* pool_;
  std::unordered_map<SearchState, Entry, SearchStateHash> cache_;
};

}  // namespace

ModifyFdsResult RunSearch(const FdSearchContext& ctx, int64_t tau,
                          const ModifyFdsOptions& opts) {
  Timer timer;
  ModifyFdsResult result;
  SearchStats& stats = result.stats;
  // Phase tracing: null on the untraced path, so every hook below is one
  // pointer test and no clock read. Timing never feeds into the schedule,
  // so traced and untraced searches visit identical states.
  obs::SearchPhaseStats* const phases = opts.phase_trace;
  const bool astar = opts.mode == SearchMode::kAStar;
  const SearchPolicy policy = opts.policy.policy;
  const bool exact = policy == SearchPolicy::kExact;
  const bool anytime = policy == SearchPolicy::kAnytime;
  const bool greedy = policy == SearchPolicy::kGreedy;
  const double w =
      anytime ? std::max(1.0, opts.policy.weighting_factor) : 1.0;
  const double eps = opts.cost_epsilon;

  // Order key from an estimate f = max(gc, cost) and the state cost. The
  // exact path NEVER goes through this function: it keeps the original
  // max(gc, cost) expression verbatim, because cost + w·(f − cost) with
  // w = 1 is not the same double as f and would break bit-identity with
  // the pre-engine loop.
  auto key_of = [&](double f, double cost) {
    return greedy ? f - cost : cost + w * (f - cost);
  };

  std::unique_ptr<exec::ThreadPool> pool = exec::MakePool(opts.exec);
  SuccessorEvaluator evaluator(ctx, tau, astar, pool.get());
  std::unique_ptr<CoverLowerBound> lb;
  if (!exact) lb = std::make_unique<CoverLowerBound>(ctx);

  // Cost cap for the non-exact policies: a state (or child) costlier than
  // this cannot become a repair worth keeping. Starts at the caller's
  // initial_upper_bound, if any; the incumbent check below is separate
  // (strict improvement) and uses best->distc directly.
  double cost_ub = std::numeric_limits<double>::infinity();
  if (!exact && opts.policy.initial_upper_bound > 0) {
    cost_ub = opts.policy.initial_upper_bound;
  }

  std::priority_queue<OpenEntry> pq;
  int64_t seq = 0;
  SearchState root = SearchState::Root(ctx.sigma().size());
  if (exact) {
    pq.push({root.Cost(ctx.weights()), root.Cost(ctx.weights()), seq++,
             !astar, root});
  } else {
    // key_of(cost, cost) is a valid lower bound of the root's true key
    // for both non-exact forms (f >= cost always).
    const double root_cost = root.Cost(ctx.weights());
    pq.push({key_of(root_cost, root_cost), root_cost, seq++, !astar, root});
  }
  ++stats.states_generated;

  std::optional<FdRepair> best;
  auto record_incumbent = [&] {
    const double now = timer.ElapsedSeconds();
    if (result.incumbents.empty()) stats.first_repair_seconds = now;
    result.incumbents.push_back(
        {now, best->distc, best->delta_p, stats.states_visited});
    ++stats.incumbent_improvements;
  };

  while (!pq.empty()) {
    // Interruption checks, once per popped state. Cancellation and deadlines
    // are timing-dependent by nature; the default options leave both off and
    // keep the search fully deterministic.
    if (opts.cancel != nullptr && opts.cancel->Cancelled()) {
      result.termination = SearchTermination::kCancelled;
      break;
    }
    if (opts.deadline_seconds > 0 &&
        timer.ElapsedSeconds() > opts.deadline_seconds) {
      result.termination = SearchTermination::kDeadline;
      break;
    }

    // Anytime optimality closure: every open entry's stored key lower-
    // bounds its true key c + w·(f − c), and any goal in its subtree costs
    // at least f >= key / w. Once the cheapest open key says no subtree
    // can beat the incumbent, the incumbent is proven cost-optimal.
    if (anytime && best.has_value() &&
        pq.top().priority / w >= best->distc - eps) {
      break;  // termination stays kCompleted; bound 1.0 below
    }

    OpenEntry top = pq.top();
    pq.pop();

    if (!top.evaluated) {
      // Deferred gc evaluation (A* only); memoized when speculated.
      double gc;
      {
        std::optional<obs::PhaseTimer> t;
        if (phases != nullptr) {
          t.emplace(&phases->evaluate_seconds, &phases->evaluate_count);
        }
        gc = evaluator.Gc(top.state, &stats);
      }
      if (gc == GcHeuristic::kInfinity) continue;  // no goal below here
      if (exact) {
        top.priority = std::max(gc, top.cost);
      } else {
        top.priority = key_of(std::max(gc, top.cost), top.cost);
      }
      top.evaluated = true;
      if (!pq.empty() && pq.top().priority < top.priority) {
        pq.push(std::move(top));  // someone else is cheaper now
        continue;
      }
    }

    ++stats.states_visited;
    if (opts.max_visited > 0 && stats.states_visited > opts.max_visited) {
      result.termination = SearchTermination::kVisitBudget;
      // Re-open the popped entry so the suboptimality floor below still
      // accounts for its subtree (no counter moves; the loop is over).
      pq.push(std::move(top));
      break;
    }

    if (exact) {
      // Once a goal is known, states that cannot beat (or tie) it are done.
      if (best.has_value()) {
        bool can_tie = opts.tie_break_delta &&
                       top.cost <= best->distc + opts.cost_epsilon;
        if (top.priority > best->distc + opts.cost_epsilon) break;
        if (!can_tie && top.cost > best->distc + opts.cost_epsilon) continue;
      }
    } else {
      // Anytime/greedy discard states that cannot strictly improve on the
      // incumbent (anytime forgoes exact's equal-cost δP tie-break scan)
      // or that bust the caller's initial upper bound. Subtree costs are
      // monotone, so a discarded state's descendants need no look either —
      // but they were pushed before the incumbent existed, hence the
      // re-check here at pop time.
      if (best.has_value() && top.cost > best->distc - eps) continue;
      if (top.cost > cost_ub + eps) continue;

      // Admissible δP floor: if even the matching over this state's DEAD
      // groups keeps δP above τ for every descendant, the whole subtree
      // is goal-free.
      int64_t floor_value;
      {
        std::optional<obs::PhaseTimer> t;
        if (phases != nullptr) {
          t.emplace(&phases->bound_seconds, &phases->bound_count);
        }
        floor_value = lb->DeltaPFloor(top.state, &stats);
      }
      if (floor_value > tau) {
        ++stats.lb_prunes;
        continue;
      }
    }

    int64_t cover;
    {
      std::optional<obs::PhaseTimer> t;
      if (phases != nullptr) {
        t.emplace(&phases->cover_seconds, &phases->cover_count);
      }
      cover = evaluator.Cover(top.state, &stats);
    }
    int64_t delta_p = ctx.alpha() * cover;
    if (delta_p <= tau) {
      // Goal state.
      double cost = top.state.Cost(ctx.weights());
      if (exact) {
        if (!best.has_value()) {
          best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost,
                          cover, delta_p};
          record_incumbent();
          if (!opts.tie_break_delta) break;
          continue;  // keep scanning for equal-cost goals with smaller δP
        }
        if (cost <= best->distc + opts.cost_epsilon &&
            delta_p < best->delta_p) {
          best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost,
                          cover, delta_p};
          record_incumbent();
        }
        continue;  // children of a goal state only cost more
      }
      // Anytime/greedy incumbent rule: keep the strictly cheaper repair,
      // or the smaller δP at (epsilon-)equal cost.
      if (!best.has_value() || cost < best->distc - eps ||
          (cost <= best->distc + eps && delta_p < best->delta_p)) {
        best = FdRepair{top.state, top.state.Apply(ctx.sigma()), cost,
                        cover, delta_p};
        record_incumbent();
      }
      if (greedy) break;  // first goal wins; no optimality claim
      continue;           // anytime: keep refining toward optimal
    }

    // Expand. Children inherit the parent's priority as a lower bound;
    // the ones surviving the bound check are (optionally) evaluated
    // speculatively in parallel before being pushed in canonical order.
    ++stats.expansions;
    std::optional<obs::PhaseTimer> expand_timer;
    if (phases != nullptr) {
      expand_timer.emplace(&phases->expand_seconds, &phases->expand_count);
    }
    std::vector<SearchState> children = ctx.space().Children(top.state);
    std::vector<double> lower(children.size());
    std::vector<double> child_cost(children.size());
    std::vector<char> keep(children.size(), 1);
    if (exact) {
      for (size_t i = 0; i < children.size(); ++i) {
        child_cost[i] = children[i].Cost(ctx.weights());
        lower[i] = std::max(top.priority, child_cost[i]);
        if (best.has_value() &&
            lower[i] > best->distc + opts.cost_epsilon) {
          keep[i] = 0;
        }
      }
    } else {
      // Recover the parent's estimate f from its key (exact inverse of
      // key_of), bound each child's f from below by max(f_parent, cost) —
      // f is monotone along tree edges — and key the child by that bound.
      const double f_parent =
          greedy ? top.priority + top.cost
                 : top.cost + (top.priority - top.cost) / w;
      for (size_t i = 0; i < children.size(); ++i) {
        child_cost[i] = children[i].Cost(ctx.weights());
        const double f_low = std::max(f_parent, child_cost[i]);
        lower[i] = key_of(f_low, child_cost[i]);
        // f lower-bounds every goal cost in the child's subtree, so a
        // child whose floor cannot strictly beat the incumbent — or whose
        // own cost busts the initial upper bound — is dead on arrival.
        if (best.has_value() && f_low > best->distc - eps) keep[i] = 0;
        if (child_cost[i] > cost_ub + eps) keep[i] = 0;
      }
    }
    evaluator.Speculate(children, keep, &stats);
    for (size_t i = 0; i < children.size(); ++i) {
      if (!keep[i]) continue;
      pq.push({lower[i], child_cost[i], seq++, !astar,
               std::move(children[i])});
      ++stats.states_generated;
    }
  }

  result.repair = std::move(best);
  stats.seconds = timer.ElapsedSeconds();

  // Proven suboptimality bound at the moment the search stopped.
  if (result.repair.has_value()) {
    if (greedy) {
      stats.suboptimality_bound = 0.0;  // no claim
    } else if (result.termination == SearchTermination::kCompleted) {
      // Open list exhausted, exact's bound break, or anytime's closure:
      // nothing left can beat the repair.
      stats.suboptimality_bound = 1.0;
    } else {
      // Interrupted with an incumbent in hand. Every unexplored state
      // descends from an open entry (interruption re-opened the in-flight
      // pop above), and each open subtree's goals cost >= stored key / w,
      // so distc / (cheapest open key / w) bounds distc / optimal.
      const double floor = pq.empty()
                               ? result.repair->distc
                               : std::min(result.repair->distc,
                                          pq.top().priority / w);
      if (floor > eps) {
        stats.suboptimality_bound =
            std::max(1.0, result.repair->distc / floor);
        if (anytime) {
          // The weighted-A* first-goal guarantee holds independently.
          stats.suboptimality_bound =
              std::min(stats.suboptimality_bound, w);
        }
      } else if (anytime) {
        stats.suboptimality_bound = w;
      }  // exact interrupted with floor 0: no finite claim — leave 0.
    }
  }
  return result;
}

}  // namespace retrust::search
