// Admissible δP lower bound for open states of the FD-modification search
// (DESIGN.md "Search policies and lower bounds").
//
// The τ-constrained search wants to discard a state S — with its WHOLE
// subtree — when every descendant Σ' provably keeps δP(Σ', I) > τ. The
// bound exploits two structural facts:
//
//  1. Reachability is attribute-monotone. In the unique-parent search tree
//     (state_space.h), a descendant of S only ever APPENDS attributes
//     a >= max(∪ Y_i): smaller attributes were already decided on the path
//     to S. So from S, FD i's extension can only grow within
//     allowed(i) ∩ [maxattr(S), ∞).
//
//  2. A difference-set group g stops violating FD i only when Y_i gains an
//     attribute of d_g. If some FD i with A_i ∈ d_g, X_i ∩ d_g = ∅ (the
//     table's precomputed incidence) still has Y_i ∩ d_g = ∅ AND no
//     reachable attribute can fix that (allowed(i) ∩ d_g ∩ [maxattr, ∞)
//     = ∅), then group g stays violated in EVERY descendant of S — the
//     group is DEAD under S.
//
// Every descendant therefore still carries all of S's dead groups, and
// δP(Σ', I) = α·|C2opt| = α·2·|maximal matching| >= α·ν(E_dead)
// >= α·|greedy matching(E_dead)| = α·CoverSize(dead)/2 — the last step
// evaluated through the SAME memoized cover layer the δP pipeline uses
// (cover values are pure functions of the group bitset, so lower-bound
// queries and δP queries share one cache). DeltaPFloor(S) > τ ⟹ no goal
// state descends from S.

#ifndef RETRUST_SEARCH_BOUND_H_
#define RETRUST_SEARCH_BOUND_H_

#include <cstdint>
#include <vector>

#include "src/graph/group_bitset.h"
#include "src/repair/modify_fds.h"

namespace retrust::search {

/// Per-search evaluator of the δP floor. Cheap to construct (borrows the
/// context's violation table and cover memo); owns mutable scratch, so one
/// instance serves ONE search loop — concurrent searches each build their
/// own, all sharing the context's memo underneath.
class CoverLowerBound {
 public:
  explicit CoverLowerBound(const FdSearchContext& ctx);

  /// Admissible lower bound on δP(Σ', I) over s and every tree descendant
  /// of s. Memo hits/misses of the underlying cover query are counted in
  /// `stats` like any other cover evaluation (nullable).
  int64_t DeltaPFloor(const SearchState& s, SearchStats* stats);

  /// The dead-group count of the last DeltaPFloor call (observability).
  int last_dead_groups() const { return last_dead_groups_; }

 private:
  const FdSearchContext& ctx_;
  std::vector<uint64_t> allowed_bits_;  ///< per FD: allowed(i) attr mask
  GroupBitset dead_;                    ///< scratch: dead groups under s
  int last_dead_groups_ = 0;
};

}  // namespace retrust::search

#endif  // RETRUST_SEARCH_BOUND_H_
