// Search-policy knobs of the anytime search engine (src/search/engine.h).
//
// Kept as a dependency-free leaf header so the option structs of layers
// BELOW the engine (repair/'s ModifyFdsOptions, api/'s RepairRequest) can
// carry a policy without depending on the engine itself — the same
// layering rule exec/options.h follows for the thread-count knob.

#ifndef RETRUST_SEARCH_POLICY_H_
#define RETRUST_SEARCH_POLICY_H_

#include <cstdint>
#include <string>

namespace retrust::search {

/// How the engine orders and prunes the open list.
enum class SearchPolicy {
  /// Algorithm 2 exactly: best-first on max(gc, cost), full optimality
  /// scan (and δP tie-break). BIT-IDENTICAL to the pre-engine ModifyFds
  /// at any thread count — no lower-bound pruning, no weighting.
  kExact,
  /// Weighted-A* anytime: open list ordered by cost + w·(f − cost) with
  /// f = max(gc, cost), so the first goal popped costs at most w·optimal.
  /// The search then KEEPS the goal as an incumbent and refines it until
  /// the open list proves optimality (or budget/deadline/cancel fire, in
  /// which case the best incumbent is returned with a suboptimality
  /// bound). States whose δP floor (cover lower bound) exceeds τ are
  /// pruned as whole subtrees.
  kAnytime,
  /// Greedy descent: open list ordered by the heuristic's remaining
  /// estimate f − cost alone; the first goal found is returned with no
  /// optimality claim (suboptimality bound 0 = unknown). The fastest way
  /// to ANY τ-feasible relaxation; δP-floor pruning applies.
  kGreedy,
};

/// Per-request policy options, carried inside ModifyFdsOptions.
struct PolicyOptions {
  SearchPolicy policy = SearchPolicy::kExact;
  /// Weighted-A* factor w >= 1 (kAnytime only): the first incumbent costs
  /// at most w·optimal. w = 1 degenerates to exact ordering but keeps the
  /// anytime incumbent/pruning machinery. Values below 1 are clamped to 1.
  double weighting_factor = 2.0;
  /// Known cost upper bound (kAnytime/kGreedy; 0 = none): states costlier
  /// than this are pruned before any incumbent exists. An underestimate
  /// makes the search return a costlier repair or none — never an invalid
  /// one — and reported suboptimality bounds are then relative to the best
  /// repair WITHIN the cap.
  double initial_upper_bound = 0.0;
};

/// One incumbent improvement: when the search first held (then improved)
/// a τ-feasible repair. ModifyFdsResult::incumbents records the whole
/// trajectory; the first point is the first-repair latency.
struct IncumbentPoint {
  double seconds = 0.0;         ///< wall-clock since the search started
  double distc = 0.0;           ///< incumbent cost at that moment
  int64_t delta_p = 0;          ///< incumbent δP
  int64_t states_visited = 0;   ///< open-list pops up to that moment
};

inline const char* PolicyName(SearchPolicy policy) {
  switch (policy) {
    case SearchPolicy::kExact: return "exact";
    case SearchPolicy::kAnytime: return "anytime";
    case SearchPolicy::kGreedy: return "greedy";
  }
  return "unknown";
}

/// Parses "exact" | "anytime" | "greedy"; false on anything else.
inline bool ParseSearchPolicy(const std::string& name, SearchPolicy* out) {
  if (name == "exact") {
    *out = SearchPolicy::kExact;
  } else if (name == "anytime") {
    *out = SearchPolicy::kAnytime;
  } else if (name == "greedy") {
    *out = SearchPolicy::kGreedy;
  } else {
    return false;
  }
  return true;
}

}  // namespace retrust::search

#endif  // RETRUST_SEARCH_POLICY_H_
