#include "src/search/bound.h"

#include <bit>

namespace retrust::search {

CoverLowerBound::CoverLowerBound(const FdSearchContext& ctx) : ctx_(ctx) {
  const int num_fds = ctx.space().num_fds();
  allowed_bits_.reserve(num_fds);
  for (int i = 0; i < num_fds; ++i) {
    allowed_bits_.push_back(ctx.space().allowed(i).bits());
  }
  dead_.Reset(ctx.evaluator().table().num_groups());
}

int64_t CoverLowerBound::DeltaPFloor(const SearchState& s,
                                     SearchStats* stats) {
  const ViolationTable& table = ctx_.evaluator().table();
  const std::vector<DiffSetGroup>& groups = ctx_.index().groups();
  const std::vector<uint64_t>& fd_masks = table.fd_masks();

  // Attributes a descendant may still append: everything at or above the
  // largest attribute already used (the a == maxattr positional rule of
  // Children() is relaxed to "any position" — a superset of what is
  // reachable, which only weakens the bound, never its admissibility).
  const uint64_t used = s.UnionExt().bits();
  const uint64_t reachable =
      used == 0 ? ~uint64_t{0} : ~uint64_t{0} << (std::bit_width(used) - 1);

  dead_.Reset(table.num_groups());
  int dead_count = 0;
  for (int g = 0; g < table.num_groups(); ++g) {
    const uint64_t d = groups[g].diff.bits();
    uint64_t fds = fd_masks[g];
    while (fds != 0) {
      const int i = std::countr_zero(fds);
      fds &= fds - 1;
      if ((s.ext[i].bits() & d) != 0) continue;       // FD i already leaves g
      if ((allowed_bits_[i] & d & reachable) != 0) continue;  // still fixable
      // FD i violates g under s and no descendant can change that.
      dead_.Set(g);
      ++dead_count;
      break;
    }
  }
  last_dead_groups_ = dead_count;
  if (dead_count == 0) return 0;

  bool hit = false;
  const int32_t cover = ctx_.evaluator().memo().CoverSize(dead_, &hit);
  if (stats != nullptr) {
    if (hit) {
      ++stats->vc_memo_hits;
    } else {
      ++stats->vc_computations;
    }
  }
  // cover = 2·|greedy maximal matching| <= 2·ν(E_dead), and every
  // descendant's C2opt is at least ν(E_dead) — see bound.h.
  return ctx_.alpha() * (cover / 2);
}

}  // namespace retrust::search
