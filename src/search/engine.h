// The FD-modification search engine: one open-list loop, three policies
// (src/search/policy.h; DESIGN.md "Search policies and lower bounds").
//
// This generalizes Algorithm 2's best-first loop (formerly inlined in
// src/repair/modify_fds.cc) behind a pluggable SearchPolicy:
//
//   kExact    the paper's loop, BIT-IDENTICAL to the pre-engine ModifyFds
//             at any thread count (tests/search_policy_test.cc holds an
//             in-test reimplementation of the legacy loop as the oracle);
//   kAnytime  weighted-A* (key = cost + w·(f − cost)) with incumbent
//             tracking: the first goal popped costs at most w·optimal and
//             is surfaced immediately (ModifyFdsResult::incumbents), then
//             refined until the open list proves optimality or a budget/
//             deadline/cancel interruption returns the best incumbent
//             with a suboptimality bound;
//   kGreedy   pure heuristic descent (key = f − cost), first goal wins.
//
// The non-exact policies additionally prune whole subtrees whose δP floor
// (the admissible cover lower bound of src/search/bound.h) already
// exceeds τ. All policies reuse the context's shared evaluation layer and
// the speculative parallel successor evaluation of src/exec/.
//
// Layering: search/ sits ON TOP of repair/ (it consumes FdSearchContext
// and the ModifyFdsOptions/Result types); repair/modify_fds.cc delegates
// its public ModifyFds entry points here. Only policy.h — the leaf knob
// header — is visible below.

#ifndef RETRUST_SEARCH_ENGINE_H_
#define RETRUST_SEARCH_ENGINE_H_

#include <cstdint>

#include "src/repair/modify_fds.h"

namespace retrust::search {

/// Runs the search selected by `opts.policy` over `ctx` at threshold τ.
/// ModifyFds(ctx, tau, opts) is the stable public alias of this call.
ModifyFdsResult RunSearch(const FdSearchContext& ctx, int64_t tau,
                          const ModifyFdsOptions& opts);

}  // namespace retrust::search

#endif  // RETRUST_SEARCH_ENGINE_H_
