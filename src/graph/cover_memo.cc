#include "src/graph/cover_memo.h"

namespace retrust {

CoverMemo::CoverMemo(std::vector<const std::vector<Edge>*> groups,
                     int32_t num_vertices, size_t max_entries,
                     GroupResolver resolver)
    : groups_(std::move(groups)),
      resolver_(std::move(resolver)),
      num_vertices_(num_vertices),
      max_entries_(max_entries) {}

CoverMemo::RebindStats CoverMemo::Rebind(
    std::vector<const std::vector<Edge>*> groups, int32_t num_vertices,
    const std::vector<int32_t>& old_to_new, GroupResolver resolver) {
  std::lock_guard<std::mutex> lock(mu_);
  RebindStats stats;
  const int new_num_groups = static_cast<int>(groups.size());

  std::unordered_map<GroupBitset, int32_t, GroupBitsetHash> set_memo;
  set_memo.reserve(set_memo_.size());
  for (const auto& [key, value] : set_memo_) {
    GroupBitset remapped(new_num_groups);
    bool alive = true;
    key.ForEachSet([&](int g) {
      int32_t ng = old_to_new[g];
      if (ng < 0) {
        alive = false;
      } else if (alive) {
        remapped.Set(ng);
      }
    });
    if (alive) {
      set_memo.emplace(std::move(remapped), value);
      ++stats.entries_kept;
    } else {
      ++stats.entries_dropped;
    }
  }
  set_memo_ = std::move(set_memo);

  std::unordered_map<std::vector<int32_t>, int32_t, CodeVectorHash> seq_memo;
  seq_memo.reserve(seq_memo_.size());
  for (const auto& [seq, value] : seq_memo_) {
    std::vector<int32_t> remapped;
    remapped.reserve(seq.size());
    bool alive = true;
    for (int32_t g : seq) {
      int32_t ng = old_to_new[g];
      if (ng < 0) {
        alive = false;
        break;
      }
      remapped.push_back(ng);
    }
    if (alive) {
      seq_memo.emplace(std::move(remapped), value);
      ++stats.entries_kept;
    } else {
      ++stats.entries_dropped;
    }
  }
  seq_memo_ = std::move(seq_memo);

  // The prefix-resume hints attribute matchings to old group ids/positions;
  // reset them (the mark arrays keep their capacity).
  for (auto& s : set_scratch_) {
    s->has_hint = false;
    s->matched.clear();
    s->matched_group.clear();
  }
  for (auto& s : seq_scratch_) {
    s->has_hint = false;
    s->matched.clear();
    s->matched_pos.clear();
  }

  groups_ = std::move(groups);
  resolver_ = std::move(resolver);
  num_vertices_ = num_vertices;
  return stats;
}

int32_t CoverMemo::CoverSize(const GroupBitset& key, bool* memo_hit) const {
  std::unique_ptr<SetScratch> scratch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = set_memo_.find(key);
    if (it != set_memo_.end()) {
      ++stats_.hits;
      if (memo_hit != nullptr) *memo_hit = true;
      return it->second;
    }
    if (!set_scratch_.empty()) {
      scratch = std::move(set_scratch_.back());
      set_scratch_.pop_back();
    }
  }
  if (scratch == nullptr) scratch = std::make_unique<SetScratch>();
  int64_t scanned = 0;
  int64_t resumed = 0;
  int32_t size = ComputeSet(key, scratch.get(), &scanned, &resumed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    stats_.groups_scanned += scanned;
    stats_.groups_resumed += resumed;
    if (set_memo_.size() < max_entries_) set_memo_.emplace(key, size);
    set_scratch_.push_back(std::move(scratch));
  }
  if (memo_hit != nullptr) *memo_hit = false;
  return size;
}

int32_t CoverMemo::CoverSizeOrdered(const std::vector<int32_t>& seq,
                                    bool* memo_hit) const {
  std::unique_ptr<SeqScratch> scratch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = seq_memo_.find(seq);
    if (it != seq_memo_.end()) {
      ++stats_.hits;
      if (memo_hit != nullptr) *memo_hit = true;
      return it->second;
    }
    if (!seq_scratch_.empty()) {
      scratch = std::move(seq_scratch_.back());
      seq_scratch_.pop_back();
    }
  }
  if (scratch == nullptr) scratch = std::make_unique<SeqScratch>();
  int64_t scanned = 0;
  int64_t resumed = 0;
  int32_t size = ComputeSeq(seq, scratch.get(), &scanned, &resumed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.misses;
    stats_.groups_scanned += scanned;
    stats_.groups_resumed += resumed;
    if (seq_memo_.size() < max_entries_) seq_memo_.emplace(seq, size);
    seq_scratch_.push_back(std::move(scratch));
  }
  if (memo_hit != nullptr) *memo_hit = false;
  return size;
}

// The prefix-resume argument, for both Compute variants: the greedy scan
// processes groups in key order, and its mark state after the first k
// groups is a pure function of those k groups. The hint's key agrees with
// the query on everything before `divergence`, so the hint's matched pairs
// attributed to that prefix ARE the from-scratch matching of the prefix;
// re-marking them and continuing the scan at `divergence` is bit-identical
// to a full recomputation (inductively, since the hint itself was computed
// this way).

int32_t CoverMemo::ComputeSet(const GroupBitset& key, SetScratch* s,
                              int64_t* scanned, int64_t* resumed) const {
  int divergence = s->has_hint ? s->last_key.FirstDifference(key) : 0;
  size_t keep = 0;
  while (keep < s->matched_group.size() &&
         s->matched_group[keep] < divergence) {
    ++keep;
  }
  s->matched.resize(keep);
  s->matched_group.resize(keep);

  s->marks.Next(num_vertices_);
  int32_t size = 0;
  for (size_t k = 0; k < keep; ++k) {
    s->marks.Mark(s->matched[k].u);
    s->marks.Mark(s->matched[k].v);
    size += 2;
  }
  *resumed += key.CountBefore(divergence);
  key.ForEachSet(
      [&](int g) {
        ++*scanned;
        for (const Edge& e : EdgesOf(g)) {
          if (!s->marks.Marked(e.u) && !s->marks.Marked(e.v)) {
            s->marks.Mark(e.u);
            s->marks.Mark(e.v);
            s->matched.push_back(e);
            s->matched_group.push_back(g);
            size += 2;
          }
        }
      },
      divergence);
  s->last_key = key;
  s->has_hint = true;
  return size;
}

int32_t CoverMemo::ComputeSeq(const std::vector<int32_t>& seq, SeqScratch* s,
                              int64_t* scanned, int64_t* resumed) const {
  size_t divergence = 0;
  if (s->has_hint) {
    size_t lim = std::min(s->last_seq.size(), seq.size());
    while (divergence < lim && s->last_seq[divergence] == seq[divergence]) {
      ++divergence;
    }
  }
  size_t keep = 0;
  while (keep < s->matched_pos.size() &&
         static_cast<size_t>(s->matched_pos[keep]) < divergence) {
    ++keep;
  }
  s->matched.resize(keep);
  s->matched_pos.resize(keep);

  s->marks.Next(num_vertices_);
  int32_t size = 0;
  for (size_t k = 0; k < keep; ++k) {
    s->marks.Mark(s->matched[k].u);
    s->marks.Mark(s->matched[k].v);
    size += 2;
  }
  *resumed += static_cast<int64_t>(divergence);
  for (size_t p = divergence; p < seq.size(); ++p) {
    ++*scanned;
    for (const Edge& e : EdgesOf(seq[p])) {
      if (!s->marks.Marked(e.u) && !s->marks.Marked(e.v)) {
        s->marks.Mark(e.u);
        s->marks.Mark(e.v);
        s->matched.push_back(e);
        s->matched_pos.push_back(static_cast<int32_t>(p));
        size += 2;
      }
    }
  }
  s->last_seq = seq;
  s->has_hint = true;
  return size;
}

CoverMemo::SnapshotEntries CoverMemo::ExportEntries() const {
  SnapshotEntries out;
  std::lock_guard<std::mutex> lock(mu_);
  out.set_entries.assign(set_memo_.begin(), set_memo_.end());
  out.seq_entries.assign(seq_memo_.begin(), seq_memo_.end());
  std::sort(out.set_entries.begin(), out.set_entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.words() < b.first.words();
            });
  std::sort(out.seq_entries.begin(), out.seq_entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void CoverMemo::Preload(SnapshotEntries entries) {
  const int n = num_groups();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, value] : entries.set_entries) {
    if (key.num_bits() != n) continue;
    if (set_memo_.size() >= max_entries_) break;
    set_memo_.emplace(std::move(key), value);
  }
  for (auto& [seq, value] : entries.seq_entries) {
    bool in_range = true;
    for (int32_t g : seq) in_range = in_range && g >= 0 && g < n;
    if (!in_range) continue;
    if (seq_memo_.size() >= max_entries_) break;
    seq_memo_.emplace(std::move(seq), value);
  }
}

CoverMemo::Stats CoverMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t CoverMemo::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return set_memo_.size() + seq_memo_.size();
}

}  // namespace retrust
