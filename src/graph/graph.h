// Minimal undirected-graph substrate for conflict graphs and vertex covers.

#ifndef RETRUST_GRAPH_GRAPH_H_
#define RETRUST_GRAPH_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace retrust {

/// An undirected edge (u, v), stored with u <= v.
struct Edge {
  int32_t u = 0;
  int32_t v = 0;

  Edge() = default;
  Edge(int32_t a, int32_t b) : u(a < b ? a : b), v(a < b ? b : a) {}

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

/// An undirected graph over vertices [0, num_vertices): edge list plus
/// lazily-built adjacency.
class Graph {
 public:
  Graph() = default;
  explicit Graph(int32_t num_vertices) : num_vertices_(num_vertices) {}

  int32_t num_vertices() const { return num_vertices_; }
  const std::vector<Edge>& edges() const { return edges_; }
  size_t num_edges() const { return edges_.size(); }

  /// Adds an undirected edge; self-loops are rejected, duplicates allowed
  /// (the cover algorithms are insensitive to them).
  void AddEdge(int32_t u, int32_t v);

  /// Builds and returns adjacency lists (vertex -> sorted neighbor list).
  std::vector<std::vector<int32_t>> BuildAdjacency() const;

  /// Degree of every vertex.
  std::vector<int32_t> Degrees() const;

 private:
  int32_t num_vertices_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace retrust

#endif  // RETRUST_GRAPH_GRAPH_H_
