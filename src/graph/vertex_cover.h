// Vertex covers of conflict graphs.
//
// The repair pipeline needs a 2-approximate minimum vertex cover C2opt
// (paper §5, §6): we use the classic maximal-matching algorithm
// (Garey & Johnson, as cited by the paper) — deterministic given the edge
// order, which the conflict-graph builder fixes. An exact branch-and-bound
// solver is provided as a test oracle for the 2-approximation property.

#ifndef RETRUST_GRAPH_VERTEX_COVER_H_
#define RETRUST_GRAPH_VERTEX_COVER_H_

#include <vector>

#include "src/graph/graph.h"

namespace retrust {

/// 2-approximate minimum vertex cover via maximal matching: scan edges in
/// order; when both endpoints are uncovered take both. Returns covered
/// vertex ids in increasing order.
std::vector<int32_t> GreedyVertexCover(const Graph& g);

/// Same, but over a raw edge list (callers union edge groups without
/// materializing a Graph). `scratch` marks covered vertices; it must be
/// sized >= max vertex id + 1 (EnsureVertices) and is reset before use via
/// the epoch trick. One instance serves one thread at a time. The hot
/// search paths now go through CoverMemo (cover_memo.h), which owns pooled
/// epoch-marked scratch of its own; this class remains the primitive for
/// one-shot covers and the legacy/oracle paths.
class MatchingCoverScratch {
 public:
  explicit MatchingCoverScratch(int32_t num_vertices)
      : mark_(num_vertices, 0) {}

  /// Grows the mark array to cover vertex ids < `num_vertices`. Never
  /// shrinks; existing epoch marks stay valid.
  void EnsureVertices(int32_t num_vertices) {
    if (static_cast<size_t>(num_vertices) > mark_.size()) {
      mark_.resize(static_cast<size_t>(num_vertices), 0);
    }
  }

  /// Size of a maximal-matching cover of `edges` (2-approx of minimum).
  int32_t CoverSize(const std::vector<Edge>& edges);

  /// Same over a pair of edge lists (avoids concatenation).
  int32_t CoverSize(const std::vector<Edge>& a, const std::vector<Edge>& b);

 private:
  void NextEpoch();

  std::vector<uint32_t> mark_;
  uint32_t epoch_ = 0;
};

/// Max-degree greedy vertex cover: repeatedly take the highest-degree
/// vertex. This is the classic ln(n)-approximation heuristic; the paper's
/// Figure 3 worked example shows covers consistent with this variant
/// ({t2}, {t2,t3}), so it is provided for fidelity and as an ablation —
/// the repair guarantees, however, are stated for the matching cover.
std::vector<int32_t> MaxDegreeVertexCover(const Graph& g);

/// Exact minimum vertex cover via branch-and-bound; exponential, use only on
/// small graphs (test oracle). Returns the cover size.
int32_t ExactMinVertexCoverSize(const Graph& g, int32_t max_vertices = 64);

/// True if `cover` covers every edge of `g`.
bool IsVertexCover(const Graph& g, const std::vector<int32_t>& cover);

}  // namespace retrust

#endif  // RETRUST_GRAPH_VERTEX_COVER_H_
