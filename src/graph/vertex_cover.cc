#include "src/graph/vertex_cover.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace retrust {

std::vector<int32_t> GreedyVertexCover(const Graph& g) {
  std::vector<char> covered(g.num_vertices(), 0);
  std::vector<int32_t> cover;
  for (const Edge& e : g.edges()) {
    if (!covered[e.u] && !covered[e.v]) {
      covered[e.u] = covered[e.v] = 1;
      cover.push_back(e.u);
      cover.push_back(e.v);
    }
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

void MatchingCoverScratch::NextEpoch() {
  if (++epoch_ == 0) {
    // uint32 wrap: stale marks from 2^32 calls ago would alias the fresh
    // epoch; clear once and restart.
    std::fill(mark_.begin(), mark_.end(), 0);
    epoch_ = 1;
  }
}

int32_t MatchingCoverScratch::CoverSize(const std::vector<Edge>& edges) {
  NextEpoch();
  int32_t size = 0;
  for (const Edge& e : edges) {
    if (mark_[e.u] != epoch_ && mark_[e.v] != epoch_) {
      mark_[e.u] = epoch_;
      mark_[e.v] = epoch_;
      size += 2;
    }
  }
  return size;
}

int32_t MatchingCoverScratch::CoverSize(const std::vector<Edge>& a,
                                        const std::vector<Edge>& b) {
  NextEpoch();
  int32_t size = 0;
  for (const std::vector<Edge>* edges : {&a, &b}) {
    for (const Edge& e : *edges) {
      if (mark_[e.u] != epoch_ && mark_[e.v] != epoch_) {
        mark_[e.u] = epoch_;
        mark_[e.v] = epoch_;
        size += 2;
      }
    }
  }
  return size;
}

std::vector<int32_t> MaxDegreeVertexCover(const Graph& g) {
  // Remaining degree per vertex; repeatedly take the max-degree vertex and
  // remove its incident edges. Ties break toward the smaller vertex id.
  std::vector<std::vector<int32_t>> adj = g.BuildAdjacency();
  std::vector<int32_t> degree = g.Degrees();
  std::vector<char> removed(g.num_vertices(), 0);
  std::vector<int32_t> cover;
  while (true) {
    int32_t best = -1;
    for (int32_t v = 0; v < g.num_vertices(); ++v) {
      if (!removed[v] && degree[v] > 0 &&
          (best < 0 || degree[v] > degree[best])) {
        best = v;
      }
    }
    if (best < 0) break;
    cover.push_back(best);
    removed[best] = 1;
    for (int32_t nbr : adj[best]) {
      if (!removed[nbr]) --degree[nbr];
    }
    degree[best] = 0;
  }
  std::sort(cover.begin(), cover.end());
  return cover;
}

namespace {

// Branch and bound: pick an uncovered edge (u, v); any cover includes u or
// v. Recurse both ways, pruning with the best size found so far.
void ExactVcRec(const std::vector<Edge>& edges, size_t edge_idx,
                std::vector<char>* in_cover, int32_t current, int32_t* best) {
  if (current >= *best) return;
  // Find next uncovered edge.
  while (edge_idx < edges.size()) {
    const Edge& e = edges[edge_idx];
    if (!(*in_cover)[e.u] && !(*in_cover)[e.v]) break;
    ++edge_idx;
  }
  if (edge_idx == edges.size()) {
    *best = std::min(*best, current);
    return;
  }
  const Edge& e = edges[edge_idx];
  (*in_cover)[e.u] = 1;
  ExactVcRec(edges, edge_idx + 1, in_cover, current + 1, best);
  (*in_cover)[e.u] = 0;
  (*in_cover)[e.v] = 1;
  ExactVcRec(edges, edge_idx + 1, in_cover, current + 1, best);
  (*in_cover)[e.v] = 0;
}

}  // namespace

int32_t ExactMinVertexCoverSize(const Graph& g, int32_t max_vertices) {
  if (g.num_vertices() > max_vertices) {
    throw std::invalid_argument("graph too large for exact vertex cover");
  }
  // Deduplicate edges for a tighter search.
  std::vector<Edge> edges = g.edges();
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  std::vector<char> in_cover(g.num_vertices(), 0);
  int32_t best = g.num_vertices();
  ExactVcRec(edges, 0, &in_cover, 0, &best);
  return best;
}

bool IsVertexCover(const Graph& g, const std::vector<int32_t>& cover) {
  std::unordered_set<int32_t> in(cover.begin(), cover.end());
  for (const Edge& e : g.edges()) {
    if (!in.count(e.u) && !in.count(e.v)) return false;
  }
  return true;
}

}  // namespace retrust
