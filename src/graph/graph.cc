#include "src/graph/graph.h"

#include <algorithm>
#include <stdexcept>

namespace retrust {

void Graph::AddEdge(int32_t u, int32_t v) {
  if (u == v) throw std::invalid_argument("self-loop");
  if (u < 0 || v < 0 || u >= num_vertices_ || v >= num_vertices_) {
    throw std::out_of_range("edge endpoint out of range");
  }
  edges_.emplace_back(u, v);
}

std::vector<std::vector<int32_t>> Graph::BuildAdjacency() const {
  std::vector<std::vector<int32_t>> adj(num_vertices_);
  for (const Edge& e : edges_) {
    adj[e.u].push_back(e.v);
    adj[e.v].push_back(e.u);
  }
  for (auto& nbrs : adj) std::sort(nbrs.begin(), nbrs.end());
  return adj;
}

std::vector<int32_t> Graph::Degrees() const {
  std::vector<int32_t> deg(num_vertices_, 0);
  for (const Edge& e : edges_) {
    ++deg[e.u];
    ++deg[e.v];
  }
  return deg;
}

}  // namespace retrust
