// Memoized, resumable greedy matching covers over a fixed family of edge
// groups (the δP evaluation pipeline's second stage; see DESIGN.md).
//
// The repair search evaluates |C2opt(Σ', I)| for thousands of states, each
// a maximal-matching vertex cover over the union of the conflict-edge
// groups still violated under Σ'. Two observations make that cheap:
//
//  1. Many evaluations share the SAME group subset — near the goal
//     frontier sibling states often violate identical group sets, and the
//     gc recursion re-derives identical "unresolved" sets along different
//     branches — so cover sizes are memoized keyed by the subset.
//  2. A child state's violated set agrees with its parent's on a prefix of
//     the scan order, and the greedy scan's mark state after that prefix
//     depends only on the prefix — so a memo miss resumes matching from
//     the longest common prefix with the previous computation on the same
//     scratch instead of re-matching from empty.
//
// Greedy matching is ORDER-SENSITIVE, so there are two keying modes over
// the same infrastructure:
//  - subset keys (GroupBitset): groups scanned in ascending canonical
//    index order — the state-evaluation path (FdSearchContext::CoverSize);
//  - sequence keys (explicit group-id lists): groups scanned in the given
//    order — Algorithm 3 accumulates unresolved groups in selection order,
//    which is part of the key.
//
// Values are pure functions of the key, so caching can never change a
// result — only wall-clock time — and the class is safe to share across
// threads: lookups/inserts are mutex-guarded, computations run outside the
// lock on pooled scratch owned by the memo and released when it dies (no
// process-lifetime thread_local pinning).

#ifndef RETRUST_GRAPH_COVER_MEMO_H_
#define RETRUST_GRAPH_COVER_MEMO_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/graph/graph.h"
#include "src/graph/group_bitset.h"

namespace retrust {

/// Memoized 2-approximate vertex covers over subsets/sequences of a fixed
/// group family. One instance serves one (Σ, I) context; every const
/// method is thread-safe.
class CoverMemo {
 public:
  /// Effectiveness counters (monotone; snapshot via stats()).
  struct Stats {
    int64_t hits = 0;            ///< covers answered from the memo
    int64_t misses = 0;          ///< covers actually (re)computed
    int64_t groups_scanned = 0;  ///< group edge lists scanned on misses
    int64_t groups_resumed = 0;  ///< group scans skipped via prefix resume

    double HitRate() const {
      int64_t total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / total;
    }
  };

  /// What Rebind kept warm vs dropped (for ApplyStats/observability).
  struct RebindStats {
    size_t entries_kept = 0;
    size_t entries_dropped = 0;
  };

  /// The memo's cached covers in serialization form (src/persist/). Values
  /// are pure functions of their keys, so carrying entries across a
  /// save/load can only change wall-clock time, never a result.
  struct SnapshotEntries {
    std::vector<std::pair<GroupBitset, int32_t>> set_entries;
    std::vector<std::pair<std::vector<int32_t>, int32_t>> seq_entries;
  };

  /// Produces the edge list of a group whose pointer in `groups` is null —
  /// the counted-group hook: DeltaPEvaluator binds this to
  /// DifferenceSetIndex::EdgesForCover so a counted full-disagreement
  /// group materializes its pairs only if a cover scan actually reaches
  /// it. Must return a reference that stays valid for the memo's lifetime
  /// and be safe to call from any thread.
  using GroupResolver = std::function<const std::vector<Edge>&(int)>;

  /// `groups[g]` is group g's edge list; the pointed-to vectors must
  /// outlive the memo (FdSearchContext owns the DifferenceSetIndex they
  /// live in). A null entry marks a counted group, resolved on demand via
  /// `resolver` (required iff any entry is null). `max_entries` caps EACH
  /// memo map; overflow disables insertion but never lookup (results stay
  /// exact, only colder).
  CoverMemo(std::vector<const std::vector<Edge>*> groups,
            int32_t num_vertices, size_t max_entries = size_t{1} << 20,
            GroupResolver resolver = nullptr);

  /// Rebinds the memo to a delta-patched group family: `groups` replaces
  /// the edge-list bindings and `old_to_new` is the IndexPatch id
  /// translation (-1 = group changed or dropped). Cached covers whose key
  /// touches only preserved groups are REMAPPED and stay warm — valid
  /// because preserved groups keep their edge lists and their relative
  /// order under the canonical (frequency, diff) ranking, so a fresh
  /// ascending-order greedy scan of the remapped key replays the cached
  /// one move for move. Everything else (and all prefix-resume scratch
  /// hints, which are keyed by old ids) is dropped. Requires external
  /// exclusion against concurrent queries (the session's version layer
  /// provides it).
  RebindStats Rebind(std::vector<const std::vector<Edge>*> groups,
                     int32_t num_vertices,
                     const std::vector<int32_t>& old_to_new,
                     GroupResolver resolver = nullptr);

  /// Matching-cover size of the union of the set groups' edges, scanned in
  /// ascending group-index order (the canonical state-evaluation order).
  /// `key.num_bits()` must equal num_groups(). Sets *memo_hit when given.
  int32_t CoverSize(const GroupBitset& key, bool* memo_hit = nullptr) const;

  /// Matching-cover size of the union of `seq`'s groups scanned in the
  /// GIVEN order (greedy covers are order-sensitive; the order is part of
  /// the key). Ids may repeat; each occurrence is scanned like the legacy
  /// concatenation did.
  int32_t CoverSizeOrdered(const std::vector<int32_t>& seq,
                           bool* memo_hit = nullptr) const;

  /// Copies every cached cover, sorted by key so the export (and therefore
  /// a snapshot's bytes) is deterministic regardless of the unordered
  /// maps' iteration order.
  SnapshotEntries ExportEntries() const;

  /// Seeds the memo maps from exported entries (subject to max_entries).
  /// Entries whose keys do not fit this memo's group family — wrong bitset
  /// width, out-of-range group ids — are skipped rather than trusted.
  void Preload(SnapshotEntries entries);

  int num_groups() const { return static_cast<int>(groups_.size()); }
  Stats stats() const;
  size_t entries() const;

 private:
  /// Epoch-marked vertex marks (same trick as MatchingCoverScratch).
  struct MarkArray {
    std::vector<uint32_t> mark;
    uint32_t epoch = 0;

    void Next(int32_t num_vertices) {
      if (static_cast<size_t>(num_vertices) > mark.size()) {
        mark.resize(static_cast<size_t>(num_vertices), 0);
      }
      if (++epoch == 0) {
        std::fill(mark.begin(), mark.end(), 0);
        epoch = 1;
      }
    }
    void Mark(int32_t v) { mark[v] = epoch; }
    bool Marked(int32_t v) const { return mark[v] == epoch; }
  };

  /// Scratch for subset-keyed computations. The hint is the previous
  /// query's key plus its matching, attributed to group indices.
  struct SetScratch {
    MarkArray marks;
    bool has_hint = false;
    GroupBitset last_key;
    std::vector<Edge> matched;
    std::vector<int32_t> matched_group;  // ascending, parallel to matched
  };

  /// Scratch for sequence-keyed computations; matches are attributed to
  /// sequence POSITIONS (the same id may occur at several positions).
  struct SeqScratch {
    MarkArray marks;
    bool has_hint = false;
    std::vector<int32_t> last_seq;
    std::vector<Edge> matched;
    std::vector<int32_t> matched_pos;  // ascending, parallel to matched
  };

  int32_t ComputeSet(const GroupBitset& key, SetScratch* s, int64_t* scanned,
                     int64_t* resumed) const;
  int32_t ComputeSeq(const std::vector<int32_t>& seq, SeqScratch* s,
                     int64_t* scanned, int64_t* resumed) const;
  /// Group g's edges: the bound pointer, or the resolver for null (counted)
  /// entries. Called outside mu_ (EdgesForCover takes its own lock).
  const std::vector<Edge>& EdgesOf(int g) const {
    const std::vector<Edge>* edges = groups_[g];
    return edges != nullptr ? *edges : resolver_(g);
  }

  std::vector<const std::vector<Edge>*> groups_;
  GroupResolver resolver_;
  int32_t num_vertices_ = 0;
  size_t max_entries_ = 0;

  mutable std::mutex mu_;
  mutable std::unordered_map<GroupBitset, int32_t, GroupBitsetHash> set_memo_;
  mutable std::unordered_map<std::vector<int32_t>, int32_t, CodeVectorHash>
      seq_memo_;
  mutable std::vector<std::unique_ptr<SetScratch>> set_scratch_;
  mutable std::vector<std::unique_ptr<SeqScratch>> seq_scratch_;
  mutable Stats stats_;
};

}  // namespace retrust

#endif  // RETRUST_GRAPH_COVER_MEMO_H_
