// A dynamic bitset over group indices.
//
// The δP evaluation pipeline (see DESIGN.md) represents "which
// difference-set groups does a search state violate" as a bitset over the
// canonical group order: ViolationTable produces it, CoverMemo keys its
// cover cache on it, and the prefix-resume optimization compares two keys
// word-by-word to find the first group where they diverge. Kept header-only
// and dependency-free so both src/fd/ and src/graph/ can use it.

#ifndef RETRUST_GRAPH_GROUP_BITSET_H_
#define RETRUST_GRAPH_GROUP_BITSET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/hash.h"

namespace retrust {

/// A fixed-universe set of group indices [0, num_bits), packed 64 per word.
class GroupBitset {
 public:
  GroupBitset() = default;
  explicit GroupBitset(int num_bits) { Reset(num_bits); }

  /// Resizes to `num_bits` and clears every bit.
  void Reset(int num_bits) {
    num_bits_ = num_bits;
    words_.assign(static_cast<size_t>(num_bits + 63) / 64, 0);
  }

  int num_bits() const { return num_bits_; }
  const std::vector<uint64_t>& words() const { return words_; }

  void Set(int i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  bool Test(int i) const { return (words_[i >> 6] >> (i & 63)) & 1; }

  /// *this |= o. Both sides must have the same num_bits.
  void OrWith(const GroupBitset& o) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= o.words_[w];
  }

  int Count() const {
    int c = 0;
    for (uint64_t w : words_) c += std::popcount(w);
    return c;
  }

  bool Any() const {
    for (uint64_t w : words_) {
      if (w != 0) return true;
    }
    return false;
  }

  /// Number of set bits with index < i.
  int CountBefore(int i) const {
    if (i > num_bits_) i = num_bits_;
    if (i <= 0) return 0;
    int full = i >> 6;
    int c = 0;
    for (int w = 0; w < full; ++w) c += std::popcount(words_[w]);
    if ((i & 63) != 0) {
      c += std::popcount(words_[full] & ((uint64_t{1} << (i & 63)) - 1));
    }
    return c;
  }

  /// Index of the first bit on which *this and `o` differ; num_bits() when
  /// equal. Differently-sized bitsets differ everywhere (returns 0).
  int FirstDifference(const GroupBitset& o) const {
    if (o.num_bits_ != num_bits_) return 0;
    for (size_t w = 0; w < words_.size(); ++w) {
      uint64_t x = words_[w] ^ o.words_[w];
      if (x != 0) {
        return static_cast<int>(w * 64) + std::countr_zero(x);
      }
    }
    return num_bits_;
  }

  /// Calls fn(index) for every set bit >= `from`, in increasing order.
  template <typename Fn>
  void ForEachSet(Fn&& fn, int from = 0) const {
    if (from < 0) from = 0;
    size_t w = static_cast<size_t>(from) >> 6;
    if (w >= words_.size()) return;
    uint64_t word = words_[w] & (~uint64_t{0} << (from & 63));
    while (true) {
      while (word != 0) {
        fn(static_cast<int>(w * 64) + std::countr_zero(word));
        word &= word - 1;
      }
      if (++w >= words_.size()) return;
      word = words_[w];
    }
  }

  friend bool operator==(const GroupBitset& a, const GroupBitset& b) {
    return a.num_bits_ == b.num_bits_ && a.words_ == b.words_;
  }
  friend bool operator!=(const GroupBitset& a, const GroupBitset& b) {
    return !(a == b);
  }

 private:
  std::vector<uint64_t> words_;
  int num_bits_ = 0;
};

/// Hasher so GroupBitset can key unordered containers (the cover memo).
struct GroupBitsetHash {
  size_t operator()(const GroupBitset& s) const {
    uint64_t seed = 0x2545f4914f6cdd1dULL ^
                    static_cast<uint64_t>(static_cast<uint32_t>(s.num_bits()));
    for (uint64_t w : s.words()) HashCombine(&seed, w);
    return static_cast<size_t>(seed);
  }
};

}  // namespace retrust

#endif  // RETRUST_GRAPH_GROUP_BITSET_H_
