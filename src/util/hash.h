// Hash helpers shared by the partition / conflict-graph kernels.

#ifndef RETRUST_UTIL_HASH_H_
#define RETRUST_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace retrust {

/// 64-bit mix (splitmix64 finalizer); good avalanche for integer keys.
inline uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Combines a hash value into a running seed (boost::hash_combine style,
/// strengthened with Mix64).
inline void HashCombine(uint64_t* seed, uint64_t value) {
  *seed = Mix64(*seed ^ (value + 0x9e3779b97f4a7c15ULL + (*seed << 6) +
                         (*seed >> 2)));
}

/// Hash of a span of 32-bit codes (LHS projection keys).
inline uint64_t HashCodes(const int32_t* data, size_t n) {
  uint64_t seed = 0x2545f4914f6cdd1dULL;
  for (size_t i = 0; i < n; ++i) {
    HashCombine(&seed, static_cast<uint64_t>(static_cast<uint32_t>(data[i])));
  }
  return seed;
}

/// Hasher for std::vector<int32_t> keys in unordered containers.
struct CodeVectorHash {
  size_t operator()(const std::vector<int32_t>& v) const {
    return static_cast<size_t>(HashCodes(v.data(), v.size()));
  }
};

}  // namespace retrust

#endif  // RETRUST_UTIL_HASH_H_
