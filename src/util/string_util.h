// Small string helpers used by FD parsing and CSV I/O.

#ifndef RETRUST_UTIL_STRING_UTIL_H_
#define RETRUST_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace retrust {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// True if `s` parses fully as a signed 64-bit integer.
bool ParseInt64(std::string_view s, int64_t* out);

/// True if `s` parses fully as a double.
bool ParseDouble(std::string_view s, double* out);

}  // namespace retrust

#endif  // RETRUST_UTIL_STRING_UTIL_H_
