// Wall-clock timing used by the benchmark harness (Figures 9-13).

#ifndef RETRUST_UTIL_TIMER_H_
#define RETRUST_UTIL_TIMER_H_

#include <chrono>

namespace retrust {

/// Monotonic wall-clock stopwatch.
class Timer {
 public:
  Timer() { Restart(); }

  /// Resets the start point to now.
  void Restart() { start_ = Clock::now(); }

  /// Seconds elapsed since construction / last Restart().
  double ElapsedSeconds() const;

  /// Milliseconds elapsed since construction / last Restart().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace retrust

#endif  // RETRUST_UTIL_TIMER_H_
