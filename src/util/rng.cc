#include "src/util/rng.h"

#include <cmath>

namespace retrust {

uint64_t Rng::NextUint(uint64_t bound) {
  std::uniform_int_distribution<uint64_t> dist(0, bound - 1);
  return dist(engine_);
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  std::uniform_int_distribution<int64_t> dist(lo, hi);
  return dist(engine_);
}

double Rng::NextDouble() {
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  return dist(engine_);
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

uint64_t Rng::NextZipf(uint64_t n, double s) {
  // Inverse-CDF sampling over the (unnormalized) harmonic weights. n is
  // expected to be modest (attribute domain sizes), so a linear scan is fine
  // relative to the cost of generating a tuple.
  if (n <= 1) return 0;
  double total = 0.0;
  for (uint64_t r = 0; r < n; ++r) total += 1.0 / std::pow(double(r + 1), s);
  double x = NextDouble() * total;
  double acc = 0.0;
  for (uint64_t r = 0; r < n; ++r) {
    acc += 1.0 / std::pow(double(r + 1), s);
    if (x < acc) return r;
  }
  return n - 1;
}

}  // namespace retrust
