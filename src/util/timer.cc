#include "src/util/timer.h"

namespace retrust {

double Timer::ElapsedSeconds() const {
  return std::chrono::duration<double>(Clock::now() - start_).count();
}

}  // namespace retrust
