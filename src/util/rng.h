// Deterministic pseudo-random number generation for all randomized steps
// (tuple/attribute ordering in Repair_Data, perturbation, data generation).
//
// Every algorithm that needs randomness takes an explicit Rng&, so runs are
// reproducible given a seed. The engine is std::mt19937_64 wrapped behind a
// small convenience API.

#ifndef RETRUST_UTIL_RNG_H_
#define RETRUST_UTIL_RNG_H_

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

namespace retrust {

/// Seedable pseudo-random source used across the library.
class Rng {
 public:
  /// Creates a generator with the given seed (default: fixed seed so that
  /// forgetting to seed still yields reproducible runs).
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : engine_(seed) {}

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextUint(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with success probability p.
  bool NextBool(double p = 0.5);

  /// Zipf-like rank in [0, n): probability of rank r proportional to
  /// 1 / (r + 1)^s. Used by the census-like generator for value skew.
  uint64_t NextZipf(uint64_t n, double s);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = NextUint(i);
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns a uniformly random element index of a non-empty container.
  template <typename C>
  size_t PickIndex(const C& c) {
    return static_cast<size_t>(NextUint(c.size()));
  }

  /// Underlying engine, for std distributions.
  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace retrust

#endif  // RETRUST_UTIL_RNG_H_
