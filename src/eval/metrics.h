// Repair-quality metrics (paper §8.1): data/FD precision, recall, F-scores
// and the combined F-score.
//
//   * A cell modification is CORRECT if the cell was actually perturbed
//     (differs between Ic and Id) and the repair either restores the clean
//     value or turns the cell into a variable (the paper counts variables
//     as correct).
//   * An appended LHS attribute is CORRECT if it was one of the attributes
//     removed from that FD while constructing Σd.
//
// Conventions for empty denominators follow Figure 8's reporting: a
// precision with zero modifications is 1 (nothing wrong was done); a recall
// with zero ground-truth errors/removals is 1 (nothing was missed).

#ifndef RETRUST_EVAL_METRICS_H_
#define RETRUST_EVAL_METRICS_H_

#include <vector>

#include "src/relational/instance.h"

namespace retrust {

/// Precision/recall/F for one aspect (data or FDs).
struct PrecisionRecall {
  double precision = 1.0;
  double recall = 1.0;
  int64_t correct = 0;
  int64_t proposed = 0;  ///< denominator of precision
  int64_t truth = 0;     ///< denominator of recall

  /// Harmonic mean of precision and recall (0 when both are 0).
  double F() const {
    double s = precision + recall;
    return s > 0 ? 2.0 * precision * recall / s : 0.0;
  }
};

/// Full quality report for one repair.
struct RepairQuality {
  PrecisionRecall data;
  PrecisionRecall fd;

  /// (F_data + F_fd) / 2 — the paper's combined F-score.
  double CombinedF() const { return (data.F() + fd.F()) / 2.0; }
};

/// Scores the data side: `clean` = Ic, `dirty` = Id, `repaired` = Ir
/// (a V-instance is fine — variables count as correct on erroneous cells).
PrecisionRecall EvaluateDataRepair(const Instance& clean,
                                   const Instance& dirty,
                                   const Instance& repaired);

/// Scores the FD side: per-FD appended attribute sets vs the ground-truth
/// removed sets (both aligned with Σd's FD order).
PrecisionRecall EvaluateFdRepair(const std::vector<AttrSet>& appended,
                                 const std::vector<AttrSet>& removed);

}  // namespace retrust

#endif  // RETRUST_EVAL_METRICS_H_
