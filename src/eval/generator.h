// Census-like synthetic data generation.
//
// The paper evaluates on the UCI Census-Income (KDD) data set (300k tuples,
// 40 attributes) with FDs found by a discovery pass. That data set is not
// available offline, so this generator produces a relation with the same
// structural properties the experiments consume (see DESIGN.md §5):
//
//   * categorical attributes with zipfian value skew;
//   * clusters of near-duplicate tuples (an "entity" model), so that tuple
//     pairs agreeing on wide attribute sets exist — the precondition for
//     the paper's violation-injection procedures;
//   * a configurable set of PLANTED exact FDs (derived attributes computed
//     as a function of their LHS projection), which play the role of the
//     discovered FDs Σc;
//   * independent noise attributes to pad the schema to census width.
//
// The layout is: [base attributes][derived attributes][noise attributes].

#ifndef RETRUST_EVAL_GENERATOR_H_
#define RETRUST_EVAL_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/fd/fdset.h"
#include "src/relational/instance.h"

namespace retrust {

/// Configuration of the census-like generator.
struct CensusConfig {
  int num_tuples = 5000;
  /// Total schema width (capped at 40 named attributes).
  int num_attrs = 10;
  /// One planted FD per entry: the entry is the LHS size (paper uses 6).
  std::vector<int> planted_lhs_sizes = {6};
  /// Number of base attributes; 0 = auto (2/3 of the non-derived width,
  /// at least the widest planted LHS).
  int num_base_attrs = 0;
  /// Domain size per attribute.
  int domain_size = 40;
  /// Zipf skew for value and entity popularity.
  double zipf_s = 0.7;
  /// Average number of tuples per entity cluster (controls how many
  /// wide-agreement tuple pairs exist).
  int dup_factor = 4;
  uint64_t seed = 42;
};

/// Generator output: a clean instance and the FDs that hold on it exactly.
struct GeneratedData {
  Instance instance;   ///< Ic
  FDSet planted_fds;   ///< Σc — exact on `instance` by construction
};

/// Generates a clean census-like instance with planted FDs. Deterministic
/// given the config (including seed). Throws std::invalid_argument on
/// inconsistent configs (e.g. schema too narrow for the planted FDs).
GeneratedData GenerateCensusLike(const CensusConfig& cfg);

/// The 40 census-flavored attribute names the generator draws from.
const std::vector<std::string>& CensusAttributeNames();

}  // namespace retrust

#endif  // RETRUST_EVAL_GENERATOR_H_
