#include "src/eval/experiment.h"

#include <stdexcept>

namespace retrust {

ExperimentData PrepareExperiment(const CensusConfig& gen,
                                 const PerturbOptions& perturb,
                                 WeightKind weights,
                                 const HeuristicOptions& hopts,
                                 const exec::Options& eopts) {
  ExperimentData data;
  data.clean = GenerateCensusLike(gen);
  data.dirty = Perturb(data.clean.instance, data.clean.planted_fds, perturb);
  SessionOptions sopts;
  sopts.weights = weights;
  sopts.heuristic = hopts;
  sopts.exec = eopts;
  Result<Session> session =
      Session::Open(data.dirty.data, data.dirty.fds, sopts);
  // Generated Σd is always well-formed; a failure here is harness misuse.
  if (!session.ok()) {
    throw std::runtime_error("PrepareExperiment: " +
                             session.status().ToString());
  }
  data.session = std::make_unique<Session>(std::move(*session));
  data.root_delta_p = data.session->RootDeltaP();
  return data;
}

RepairQuality ScoreRepair(const ExperimentData& data, const Repair& repair) {
  RepairQuality q;
  q.data = EvaluateDataRepair(data.clean.instance, data.dirty_instance(),
                              repair.data.Decode());
  q.fd = EvaluateFdRepair(repair.extensions, data.dirty.removed_lhs);
  return q;
}

ExperimentRun RunRepairAt(const ExperimentData& data, double tau_r,
                          SearchMode mode, uint64_t seed) {
  ExperimentRun run;
  run.tau = TauFromRelative(tau_r, data.root_delta_p);
  RepairRequest req = RepairRequest::At(run.tau);
  req.mode = mode;
  req.seed = seed;
  Result<RepairResponse> response = data.session->Repair(req);
  if (!response.ok()) return run;
  Repair repair = std::move(response->repair);
  run.repaired = true;
  run.stats = repair.stats;
  run.distc = repair.distc;
  run.cells_changed = static_cast<int64_t>(repair.changed_cells.size());
  run.quality = ScoreRepair(data, repair);
  run.repair = std::move(repair);
  return run;
}

ExperimentRun RunUnifiedCost(const ExperimentData& data,
                             const UnifiedCostOptions& opts) {
  ExperimentRun run;
  Repair repair =
      UnifiedCostRepair(data.dirty.fds, data.encoded(), data.weights(), opts);
  run.repaired = true;
  run.stats = repair.stats;
  run.distc = repair.distc;
  run.cells_changed = static_cast<int64_t>(repair.changed_cells.size());
  run.quality = ScoreRepair(data, repair);
  run.repair = std::move(repair);
  return run;
}

}  // namespace retrust
