#include "src/eval/experiment.h"

namespace retrust {

ExperimentData PrepareExperiment(const CensusConfig& gen,
                                 const PerturbOptions& perturb,
                                 WeightKind weights,
                                 const HeuristicOptions& hopts,
                                 const exec::Options& eopts) {
  ExperimentData data;
  data.clean = GenerateCensusLike(gen);
  data.dirty = Perturb(data.clean.instance, data.clean.planted_fds, perturb);
  data.dirty_instance = data.dirty.data;
  data.encoded = std::make_unique<EncodedInstance>(data.dirty_instance);
  switch (weights) {
    case WeightKind::kDistinctCount:
      data.weights = std::make_unique<DistinctCountWeight>(*data.encoded);
      break;
    case WeightKind::kCardinality:
      data.weights = std::make_unique<CardinalityWeight>();
      break;
    case WeightKind::kEntropy:
      data.weights = std::make_unique<EntropyWeight>(*data.encoded);
      break;
  }
  data.context = std::make_unique<FdSearchContext>(
      data.dirty.fds, *data.encoded, *data.weights, hopts, eopts);
  data.root_delta_p = data.context->RootDeltaP();
  return data;
}

RepairQuality ScoreRepair(const ExperimentData& data, const Repair& repair) {
  RepairQuality q;
  q.data = EvaluateDataRepair(data.clean.instance, data.dirty_instance,
                              repair.data.Decode());
  q.fd = EvaluateFdRepair(repair.extensions, data.dirty.removed_lhs);
  return q;
}

ExperimentRun RunRepairAt(const ExperimentData& data, double tau_r,
                          SearchMode mode, uint64_t seed) {
  ExperimentRun run;
  run.tau = TauFromRelative(tau_r, data.root_delta_p);
  RepairOptions opts;
  opts.search.mode = mode;
  opts.seed = seed;
  std::optional<Repair> repair =
      RepairDataAndFds(*data.context, *data.encoded, run.tau, opts);
  if (!repair.has_value()) return run;
  run.repaired = true;
  run.stats = repair->stats;
  run.distc = repair->distc;
  run.cells_changed = static_cast<int64_t>(repair->changed_cells.size());
  run.quality = ScoreRepair(data, *repair);
  run.repair = std::move(repair);
  return run;
}

ExperimentRun RunUnifiedCost(const ExperimentData& data,
                             const UnifiedCostOptions& opts) {
  ExperimentRun run;
  Repair repair =
      UnifiedCostRepair(data.dirty.fds, *data.encoded, *data.weights, opts);
  run.repaired = true;
  run.stats = repair.stats;
  run.distc = repair.distc;
  run.cells_changed = static_cast<int64_t>(repair.changed_cells.size());
  run.quality = ScoreRepair(data, repair);
  run.repair = std::move(repair);
  return run;
}

}  // namespace retrust
