#include "src/eval/metrics.h"

#include <stdexcept>

namespace retrust {

PrecisionRecall EvaluateDataRepair(const Instance& clean,
                                   const Instance& dirty,
                                   const Instance& repaired) {
  if (clean.NumTuples() != dirty.NumTuples() ||
      dirty.NumTuples() != repaired.NumTuples()) {
    throw std::invalid_argument("instances must have equal cardinality");
  }
  PrecisionRecall pr;
  for (TupleId t = 0; t < clean.NumTuples(); ++t) {
    for (AttrId a = 0; a < clean.NumAttrs(); ++a) {
      bool erroneous = clean.At(t, a) != dirty.At(t, a);
      bool modified = dirty.At(t, a) != repaired.At(t, a);
      if (erroneous) ++pr.truth;
      if (modified) ++pr.proposed;
      if (erroneous && modified &&
          (repaired.At(t, a).is_variable() ||
           repaired.At(t, a) == clean.At(t, a))) {
        ++pr.correct;
      }
    }
  }
  pr.precision = pr.proposed > 0
                     ? static_cast<double>(pr.correct) / pr.proposed
                     : 1.0;
  pr.recall =
      pr.truth > 0 ? static_cast<double>(pr.correct) / pr.truth : 1.0;
  return pr;
}

PrecisionRecall EvaluateFdRepair(const std::vector<AttrSet>& appended,
                                 const std::vector<AttrSet>& removed) {
  if (appended.size() != removed.size()) {
    throw std::invalid_argument("appended/removed vectors must align");
  }
  PrecisionRecall pr;
  for (size_t i = 0; i < appended.size(); ++i) {
    pr.proposed += appended[i].Count();
    pr.truth += removed[i].Count();
    pr.correct += appended[i].Intersect(removed[i]).Count();
  }
  pr.precision = pr.proposed > 0
                     ? static_cast<double>(pr.correct) / pr.proposed
                     : 1.0;
  pr.recall =
      pr.truth > 0 ? static_cast<double>(pr.correct) / pr.truth : 1.0;
  return pr;
}

}  // namespace retrust
