// Controlled perturbation of clean data and correct FDs (paper §8.1).
//
// Data perturbation injects cell errors such that EVERY injected change
// creates at least one FD violation, using the paper's two procedures:
//   * RHS violation: find t_i, t_j agreeing on X for some FD X -> A (they
//     then agree on A too, since the FD holds on the clean data) and set
//     t_i[A] to a fresh erroneous value.
//   * LHS violation: find t_i, t_j with t_i[X\{B}] = t_j[X\{B}],
//     t_i[B] != t_j[B], t_i[A] != t_j[A]; set t_i[B] = t_j[B].
//
// FD perturbation removes a fraction of LHS attributes (never emptying an
// LHS), producing the inaccurate Σd the repair algorithms are given. The
// removed attributes are the ground truth for FD precision/recall.

#ifndef RETRUST_EVAL_PERTURB_H_
#define RETRUST_EVAL_PERTURB_H_

#include <cstdint>
#include <vector>

#include "src/fd/fdset.h"
#include "src/relational/instance.h"

namespace retrust {

/// Perturbation parameters. Rates follow the paper's axes: the data error
/// rate is the fraction of TUPLES that receive one erroneous cell (see
/// DESIGN.md on this reading of "fraction of cells"), the FD error rate is
/// the fraction of LHS attribute slots removed across Σ.
struct PerturbOptions {
  double data_error_rate = 0.05;
  double fd_error_rate = 0.5;
  /// Probability an injected data error is a RHS violation (else LHS).
  double rhs_violation_share = 0.5;
  uint64_t seed = 7;
};

/// Perturbation output (the experiment's ground truth).
struct PerturbedData {
  Instance data;  ///< Id
  FDSet fds;      ///< Σd (LHS-reduced)
  /// Cells changed while perturbing the data (the erroneous cells).
  std::vector<CellRef> perturbed_cells;
  /// Per-FD attributes removed from the LHS (aligned with fds).
  std::vector<AttrSet> removed_lhs;
};

/// Perturbs `clean` (which must satisfy `clean_fds`) per `opts`.
/// Deterministic given the seed. If the data cannot absorb the requested
/// number of injectable errors (no qualifying tuple pairs remain), fewer
/// errors are injected; `perturbed_cells` reports the achieved set.
PerturbedData Perturb(const Instance& clean, const FDSet& clean_fds,
                      const PerturbOptions& opts);

}  // namespace retrust

#endif  // RETRUST_EVAL_PERTURB_H_
