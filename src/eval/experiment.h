// Shared experiment harness: generate clean data + FDs, perturb both, run a
// repair, score it. Every bench binary (Figures 7-13) is a thin driver over
// these helpers.

#ifndef RETRUST_EVAL_EXPERIMENT_H_
#define RETRUST_EVAL_EXPERIMENT_H_

#include <memory>

#include "src/api/session.h"
#include "src/eval/generator.h"
#include "src/eval/metrics.h"
#include "src/eval/perturb.h"
#include "src/repair/repair_driver.h"
#include "src/repair/unified_cost.h"

namespace retrust {

/// Which w(Y) to use — the facade's weight-model enum under the
/// harness's historical name.
using WeightKind = WeightModel;

/// Everything a repair experiment needs, prepared once and reused across
/// τ sweeps / search modes. The repair wiring (Id copy, encoding, weights,
/// search context, sweep pool) lives inside `session` — the same facade
/// downstream users get; the accessors below reach through it for the
/// kernels the micro benchmarks and determinism tests drive directly.
struct ExperimentData {
  GeneratedData clean;          ///< Ic, Σc
  PerturbedData dirty;          ///< Id, Σd + ground truth
  std::unique_ptr<Session> session;  ///< facade over (Id, Σd)
  int64_t root_delta_p = 0;     ///< δP(Σd, Id): τr = 100% maps here

  const Instance& dirty_instance() const { return session->instance(); }
  const EncodedInstance& encoded() const { return session->data(); }
  const FdSearchContext& context() const { return session->context(); }
  const WeightFunction& weights() const { return session->weights(); }
};

/// Generates, perturbs, encodes, and builds the search context. `eopts`
/// shards the conflict-graph/difference-set construction (identical output
/// for any thread count).
ExperimentData PrepareExperiment(const CensusConfig& gen,
                                 const PerturbOptions& perturb,
                                 WeightKind weights = WeightKind::kDistinctCount,
                                 const HeuristicOptions& hopts = {},
                                 const exec::Options& eopts = {});

/// Runs Algorithm 1 at relative trust τr and scores the result against the
/// ground truth. Returns quality plus the raw repair.
struct ExperimentRun {
  bool repaired = false;
  RepairQuality quality;
  SearchStats stats;
  int64_t tau = 0;
  double distc = 0.0;
  int64_t cells_changed = 0;
  std::optional<Repair> repair;
};

ExperimentRun RunRepairAt(const ExperimentData& data, double tau_r,
                          SearchMode mode = SearchMode::kAStar,
                          uint64_t seed = 1);

/// Runs the unified-cost baseline on the same prepared data and scores it.
ExperimentRun RunUnifiedCost(const ExperimentData& data,
                             const UnifiedCostOptions& opts = {});

/// Scores an arbitrary repair against the prepared ground truth.
RepairQuality ScoreRepair(const ExperimentData& data, const Repair& repair);

}  // namespace retrust

#endif  // RETRUST_EVAL_EXPERIMENT_H_
