#include "src/eval/perturb.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "src/relational/dictionary.h"
#include "src/util/hash.h"
#include "src/util/rng.h"

namespace retrust {
namespace {

// Partition classes (size >= 2) of the clean codes on `attrs`.
std::vector<std::vector<TupleId>> Classes(const EncodedInstance& enc,
                                          AttrSet attrs) {
  std::vector<AttrId> cols = attrs.ToVector();
  std::unordered_map<std::vector<int32_t>, std::vector<TupleId>,
                     CodeVectorHash>
      parts;
  std::vector<int32_t> key(cols.size());
  for (TupleId t = 0; t < enc.NumTuples(); ++t) {
    for (size_t i = 0; i < cols.size(); ++i) key[i] = enc.At(t, cols[i]);
    parts[key].push_back(t);
  }
  std::vector<std::vector<TupleId>> out;
  for (auto& [k, ts] : parts) {
    if (ts.size() >= 2) out.push_back(std::move(ts));
  }
  // Deterministic order.
  std::sort(out.begin(), out.end());
  return out;
}

// A fresh, per-attribute erroneous value outside the attribute's domain.
class FreshValues {
 public:
  explicit FreshValues(const Instance& inst) : next_int_(inst.NumAttrs(), 0) {
    for (TupleId t = 0; t < inst.NumTuples(); ++t) {
      for (AttrId a = 0; a < inst.NumAttrs(); ++a) {
        const Value& v = inst.At(t, a);
        if (v.kind() == Value::Kind::kInt) {
          next_int_[a] = std::max(next_int_[a], v.AsInt() + 1);
        }
      }
    }
  }

  Value Next(const Instance& inst, AttrId a) {
    switch (inst.schema().type(a)) {
      case AttrType::kInt:
        return Value(next_int_[a]++);
      case AttrType::kDouble:
        return Value(1e15 + static_cast<double>(next_int_[a]++));
      case AttrType::kString:
        return Value("__err_" + std::to_string(a) + "_" +
                     std::to_string(next_int_[a]++));
    }
    return Value();
  }

 private:
  std::vector<int64_t> next_int_;
};

}  // namespace

PerturbedData Perturb(const Instance& clean, const FDSet& clean_fds,
                      const PerturbOptions& opts) {
  Rng rng(opts.seed);
  PerturbedData out;
  out.data = clean;

  // --- FD perturbation: remove a fraction of LHS attribute slots. ---
  out.removed_lhs.assign(clean_fds.size(), AttrSet());
  std::vector<std::pair<int, AttrId>> slots;
  int64_t total_lhs = 0;
  for (int i = 0; i < clean_fds.size(); ++i) {
    for (AttrId a : clean_fds.fd(i).lhs) {
      slots.emplace_back(i, a);
      ++total_lhs;
    }
  }
  int64_t to_remove = static_cast<int64_t>(
      std::llround(opts.fd_error_rate * static_cast<double>(total_lhs)));
  rng.Shuffle(&slots);
  std::vector<FD> reduced = clean_fds.fds();
  int64_t removed = 0;
  for (const auto& [i, a] : slots) {
    if (removed >= to_remove) break;
    if (reduced[i].lhs.Count() <= 1) continue;  // never empty an LHS
    reduced[i].lhs.Remove(a);
    out.removed_lhs[i].Add(a);
    ++removed;
  }
  out.fds = FDSet(std::move(reduced));

  // --- Data perturbation: inject violating cell errors. ---
  EncodedInstance enc(clean);  // pair-finding uses CLEAN codes throughout
  FreshValues fresh(clean);
  int n = clean.NumTuples();
  int64_t num_errors = static_cast<int64_t>(
      std::llround(opts.data_error_rate * static_cast<double>(n)));

  // Precompute candidate classes per FD.
  struct FdClasses {
    std::vector<std::vector<TupleId>> rhs_classes;  // partition by X
    // Per LHS attribute B: partition by X \ {B}.
    std::vector<std::pair<AttrId, std::vector<std::vector<TupleId>>>>
        lhs_classes;
  };
  std::vector<FdClasses> cand(clean_fds.size());
  for (int i = 0; i < clean_fds.size(); ++i) {
    const FD& fd = clean_fds.fd(i);
    cand[i].rhs_classes = Classes(enc, fd.lhs);
    for (AttrId b : fd.lhs) {
      AttrSet rest = fd.lhs;
      rest.Remove(b);
      cand[i].lhs_classes.emplace_back(b, Classes(enc, rest));
    }
  }

  std::vector<char> touched(n, 0);

  auto inject_rhs = [&](int fd_idx) -> bool {
    const FD& fd = clean_fds.fd(fd_idx);
    auto& classes = cand[fd_idx].rhs_classes;
    if (classes.empty()) return false;
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto& cls = classes[rng.PickIndex(classes)];
      // Two untouched tuples from the class.
      TupleId ti = cls[rng.PickIndex(cls)];
      TupleId tj = cls[rng.PickIndex(cls)];
      if (ti == tj || touched[ti] || touched[tj]) continue;
      out.data.Set(ti, fd.rhs, fresh.Next(clean, fd.rhs));
      out.perturbed_cells.push_back({ti, fd.rhs});
      touched[ti] = 1;
      return true;
    }
    return false;
  };

  auto inject_lhs = [&](int fd_idx) -> bool {
    const FD& fd = clean_fds.fd(fd_idx);
    auto& per_b = cand[fd_idx].lhs_classes;
    if (per_b.empty()) return false;
    for (int attempt = 0; attempt < 32; ++attempt) {
      auto& [b, classes] = per_b[rng.PickIndex(per_b)];
      if (classes.empty()) continue;
      const auto& cls = classes[rng.PickIndex(classes)];
      // Need a pair differing on both B and A, both untouched.
      TupleId ti = cls[rng.PickIndex(cls)];
      TupleId tj = cls[rng.PickIndex(cls)];
      if (ti == tj || touched[ti] || touched[tj]) continue;
      if (enc.At(ti, b) == enc.At(tj, b)) continue;
      if (enc.At(ti, fd.rhs) == enc.At(tj, fd.rhs)) continue;
      out.data.Set(ti, b, clean.At(tj, b));
      out.perturbed_cells.push_back({ti, b});
      touched[ti] = 1;
      return true;
    }
    return false;
  };

  if (!clean_fds.empty()) {
    for (int64_t k = 0; k < num_errors; ++k) {
      bool want_rhs = rng.NextBool(opts.rhs_violation_share);
      bool done = false;
      // Try the preferred type across random FDs, then the other type.
      for (int round = 0; round < 2 && !done; ++round) {
        bool rhs = (round == 0) ? want_rhs : !want_rhs;
        for (int tries = 0; tries < 8 && !done; ++tries) {
          int fd_idx = static_cast<int>(rng.NextUint(clean_fds.size()));
          done = rhs ? inject_rhs(fd_idx) : inject_lhs(fd_idx);
        }
      }
      if (!done) break;  // data cannot absorb more injectable errors
    }
  }

  std::sort(out.perturbed_cells.begin(), out.perturbed_cells.end());
  return out;
}

}  // namespace retrust
