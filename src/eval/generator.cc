#include "src/eval/generator.h"

#include <algorithm>
#include <stdexcept>

#include "src/util/hash.h"
#include "src/util/rng.h"

namespace retrust {

const std::vector<std::string>& CensusAttributeNames() {
  static const std::vector<std::string> kNames = {
      "age",            "class_of_worker", "industry",       "occupation",
      "education",      "wage_per_hour",   "enrolled_edu",   "marital_status",
      "major_industry", "major_occ",       "race",           "hispanic",
      "sex",            "union_member",    "unemp_reason",   "employ_stat",
      "capital_gains",  "capital_losses",  "dividends",      "tax_status",
      "region_prev",    "state_prev",      "household_stat", "household_sum",
      "instance_wt",    "mig_msa",         "mig_reg",        "mig_within",
      "same_house",     "prev_sunbelt",    "num_employer",   "parents",
      "father_birth",   "mother_birth",    "self_birth",     "citizenship",
      "own_business",   "veteran_admin",   "veteran_benefit", "weeks_worked"};
  return kNames;
}

GeneratedData GenerateCensusLike(const CensusConfig& cfg) {
  const int p = static_cast<int>(cfg.planted_lhs_sizes.size());
  const int m = cfg.num_attrs;
  if (m > static_cast<int>(CensusAttributeNames().size())) {
    throw std::invalid_argument("num_attrs exceeds available census names");
  }
  int widest = 0;
  for (int s : cfg.planted_lhs_sizes) widest = std::max(widest, s);
  int num_base = cfg.num_base_attrs;
  if (num_base == 0) num_base = std::max(widest, (m - p) * 2 / 3);
  if (num_base < widest || num_base + p > m) {
    throw std::invalid_argument(
        "schema too narrow for the planted FDs (need base >= widest LHS and "
        "base + planted <= num_attrs)");
  }

  // Schema: base attrs [0, num_base), derived [num_base, num_base + p),
  // noise [num_base + p, m). All integer-typed categorical codes.
  std::vector<Attribute> attrs(m);
  for (int a = 0; a < m; ++a) {
    attrs[a] = {CensusAttributeNames()[a], AttrType::kInt};
  }
  Instance inst{Schema(std::move(attrs))};

  // Base attributes have heterogeneous cardinalities (census columns range
  // from sex-like to occupation-like): attribute a draws from a domain of
  // size growing with a. Planted FDs put their LHS on the HIGH-cardinality
  // (informative) attributes — matching real FDs, whose determining
  // attributes are informative and therefore expensive to (re-)append under
  // distinct-count weights, while the cheap uninformative columns form the
  // large set of useless candidate extensions the searches must reject.
  std::vector<int> base_domain(num_base);
  for (int a = 0; a < num_base; ++a) {
    base_domain[a] =
        std::max(3, cfg.domain_size * (a + 1) / std::max(1, num_base));
  }
  std::vector<FD> planted;
  for (int j = 0; j < p; ++j) {
    AttrSet lhs;
    int s = cfg.planted_lhs_sizes[j];
    for (int i = 0; i < s; ++i) {
      lhs.Add(num_base - 1 - ((j * 2 + i) % num_base));
    }
    planted.emplace_back(lhs, num_base + j);
  }

  Rng rng(cfg.seed);
  // Entity pool: each entity fixes the base attribute values. Entities are
  // drawn from a small pool of archetypes with light per-attribute
  // mutation, which correlates base attributes the way real census columns
  // correlate — two entities that agree on part of an FD's LHS then mostly
  // agree on the other base attributes too, so only genuinely informative
  // attributes can separate violating tuple pairs.
  int num_entities =
      std::max(2, cfg.num_tuples / std::max(1, cfg.dup_factor));
  int num_archetypes = std::max(4, num_entities / 16);
  std::vector<std::vector<int64_t>> archetypes(num_archetypes);
  for (auto& arch : archetypes) {
    arch.resize(num_base);
    for (int a = 0; a < num_base; ++a) {
      arch[a] =
          static_cast<int64_t>(rng.NextZipf(base_domain[a], cfg.zipf_s));
    }
  }
  std::vector<std::vector<int64_t>> entities(num_entities);
  for (auto& e : entities) {
    e = archetypes[rng.PickIndex(archetypes)];
    for (int a = 0; a < num_base; ++a) {
      if (rng.NextBool(0.15)) {
        e[a] =
            static_cast<int64_t>(rng.NextZipf(base_domain[a], cfg.zipf_s));
      }
    }
  }

  for (int t = 0; t < cfg.num_tuples; ++t) {
    // Uniform entity popularity keeps duplicate clusters near dup_factor;
    // zipf popularity would create giant clusters whose cross-agreements
    // blow the conflict graph up quadratically.
    const auto& entity = entities[rng.NextUint(entities.size())];
    Tuple row(m);
    for (int a = 0; a < num_base; ++a) row[a] = Value(entity[a]);
    // Derived attributes: a pure function of the LHS projection, so the
    // planted FD holds exactly across ALL tuples (not just within an
    // entity cluster).
    for (int j = 0; j < p; ++j) {
      uint64_t h = 0x5bd1e995u + static_cast<uint64_t>(j) * 0x9e3779b9u;
      for (AttrId a : planted[j].lhs) {
        HashCombine(&h, static_cast<uint64_t>(entity[a]));
      }
      row[num_base + j] =
          Value(static_cast<int64_t>(h % static_cast<uint64_t>(
                                         cfg.domain_size)));
    }
    // Noise attributes: independent, low-cardinality, heavily skewed
    // (flag-like census columns: sex, union_member, ...). They are CHEAP to
    // append under distinct-count weights but agree between most tuple
    // pairs, so appending them resolves (almost) nothing — the large pool
    // of cheap-but-useless extension candidates that uninformed best-first
    // search drowns in (paper §8.3).
    for (int a = num_base + p; a < m; ++a) {
      row[a] = Value(static_cast<int64_t>(rng.NextZipf(5, 1.2)));
    }
    inst.AddTuple(std::move(row));
  }

  GeneratedData out;
  out.instance = std::move(inst);
  out.planted_fds = FDSet(std::move(planted));
  return out;
}

}  // namespace retrust
