#!/usr/bin/env python3
"""Loopback smoke test of tools/retrust_server (CI's Release service step).

Usage: service_smoke.py <path/to/retrust_server>

Launches the server on an ephemeral port, registers two CSV tenants, and
drives a mixed repair + sweep + apply_delta workload from concurrent
connections (one per tenant plus one mixed). Asserts:

  * every response is ok,
  * ZERO requests were rejected — the workload stays under capacity, so
    any shed request is an admission-control bug,
  * per-tenant stats see the deltas (data_version advanced, tuples grew),
  * the server exits 0 after the shutdown verb.
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading


def write_tenant_csv(path, num_rows, violation_stride):
    """City->Zip mostly holds; every `violation_stride`-th row breaks it."""
    with open(path, "w") as f:
        f.write("Name,City,Zip\n")
        for i in range(num_rows):
            city = f"City{i % 7}"
            zipc = f"Z{i % 7}" if i % violation_stride else f"ZBAD{i}"
            f.write(f"P{i},{city},{zipc}\n")


class Conn:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("rw")

    def rpc(self, obj):
        self.file.write(json.dumps(obj) + "\n")
        self.file.flush()
        reply = json.loads(self.file.readline())
        return reply

    def close(self):
        self.file.close()
        self.sock.close()


def drive_tenant(port, tenant, rounds, errors):
    """Interleaved repairs and deltas for one tenant on its own socket."""
    try:
        conn = Conn(port)
        for i in range(rounds):
            r = conn.rpc({"op": "repair", "tenant": tenant,
                          "tau_r": [0.25, 0.5, 1.0][i % 3], "seed": i + 1,
                          "id": i})
            if not r.get("ok"):
                errors.append(f"{tenant} repair {i}: {r}")
            if r.get("id") != i:
                errors.append(f"{tenant} repair {i}: id echo broken: {r}")
            if i % 3 == 1:
                d = conn.rpc({"op": "apply_delta", "tenant": tenant,
                              "inserts": [[f"New{i}", f"City{i % 7}",
                                           f"Z{i % 7}"]]})
                if not d.get("ok"):
                    errors.append(f"{tenant} delta {i}: {d}")
        s = conn.rpc({"op": "sweep", "tenant": tenant,
                      "requests": [{"tau": 0}, {"tau_r": 0.5},
                                   {"tau_r": 1.0}]})
        if not s.get("ok") or len(s.get("results", [])) != 3:
            errors.append(f"{tenant} sweep: {s}")
        conn.close()
    except Exception as e:  # noqa: BLE001 - collect, don't crash the thread
        errors.append(f"{tenant}: {type(e).__name__}: {e}")


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    server_bin = sys.argv[1]

    tmp = tempfile.mkdtemp(prefix="retrust_smoke_")
    csv_a = os.path.join(tmp, "hosp.csv")
    csv_b = os.path.join(tmp, "census.csv")
    write_tenant_csv(csv_a, 80, 9)
    write_tenant_csv(csv_b, 60, 7)

    proc = subprocess.Popen(
        [server_bin, "--port", "0", "--workers", "2",
         "--queue-depth", "1024"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    try:
        line = proc.stdout.readline()
        m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
        assert m, f"no listening banner, got: {line!r}"
        port = int(m.group(1))

        ctl = Conn(port)
        for tenant, path in (("hosp", csv_a), ("census", csv_b)):
            r = ctl.rpc({"op": "load_tenant", "tenant": tenant, "csv": path,
                         "fds": ["City->Zip"]})
            assert r.get("ok"), f"load_tenant {tenant}: {r}"

        rounds = 12
        errors = []
        threads = [threading.Thread(target=drive_tenant,
                                    args=(port, tenant, rounds, errors))
                   for tenant in ("hosp", "census")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, "\n".join(errors)

        stats = ctl.rpc({"op": "stats"})
        assert stats.get("ok"), stats
        print(f"server stats: {json.dumps(stats, sort_keys=True)}")
        assert stats["rejected"] == 0, \
            f"requests rejected under capacity: {stats}"
        assert stats["expired_in_queue"] == 0, stats
        assert stats["cancelled"] == 0, stats
        # 12 repairs + 4 deltas + 1 sweep per tenant, 2 tenants.
        assert stats["completed"] == 2 * (rounds + 4 + 1), stats
        assert stats["queue_depth"] == 0 and stats["in_flight"] == 0, stats
        assert stats["p50_latency_seconds"] <= stats["p99_latency_seconds"]

        for tenant, base_rows in (("hosp", 80), ("census", 60)):
            ts = ctl.rpc({"op": "stats", "tenant": tenant})
            assert ts.get("ok") and ts["loaded"], ts
            assert ts["num_tuples"] == base_rows + 4, ts  # 4 delta inserts
            assert ts["data_version"] == 5, ts            # 1 + 4 applies
            assert ts["cache"]["contexts"], ts
            print(f"tenant {tenant}: n={ts['num_tuples']} "
                  f"v={ts['data_version']} "
                  f"cache_bytes={ts['cache']['bytes_estimate']}")

        r = ctl.rpc({"op": "shutdown"})
        assert r.get("ok"), r
        ctl.close()
        proc.wait(timeout=30)
        assert proc.returncode == 0, f"server exit {proc.returncode}"
        print("service smoke: OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
