#!/usr/bin/env python3
"""Loopback smoke test of tools/retrust_server (CI's Release service step).

Usage: service_smoke.py <path/to/retrust_server>

Launches the server on an ephemeral port, registers two CSV tenants, and
drives a mixed repair + sweep + apply_delta workload from concurrent
connections (one per tenant plus one mixed). Asserts:

  * every response is ok,
  * ZERO requests were rejected — the workload stays under capacity, so
    any shed request is an admission-control bug,
  * per-tenant stats see the deltas (data_version advanced, tuples grew),
  * the server exits 0 after the shutdown verb.

Then the warm-restart phase: save_snapshot the delta-mutated tenant, kill
the server, restart it with --tenant-snapshot pointing at the file, and
assert the restored tenant answers the SAME repair requests with
bit-identical responses (modulo wall-clock "seconds"). Also exercises
unload_tenant: an unloaded tenant's next request transparently reloads it
and still answers identically.

Finally the pipelined-wire phase (a fresh server): hundreds of concurrent
connections each pipeline a burst of requests — all sent before any reply
is read — across mixed tenants. Asserts every reply is ok, every reply is
matched back to its request by the echoed id (replies may arrive out of
order), and ZERO requests were rejected under capacity. Then quota
fairness: a token-bucket-throttled tenant is flooded and sheds requests
with Overloaded errors, while a quiet unlimited tenant's concurrent
requests all succeed — one tenant's rejections never starve another.

The observability phase rides on the same server: the `metrics` verb is
scraped mid-load and again after the quota flood, asserting counters only
ever grow, that the registry's completed/rejected_quota series agree with
the client-side tallies, and that >= 15 distinct series are exposed. A
repair with "trace": true must return a span tree (untraced repairs must
not), and `dump_recent` must remember the most recent requests.
"""

import json
import os
import re
import socket
import subprocess
import sys
import tempfile
import threading


def write_tenant_csv(path, num_rows, violation_stride):
    """City->Zip mostly holds; every `violation_stride`-th row breaks it."""
    with open(path, "w") as f:
        f.write("Name,City,Zip\n")
        for i in range(num_rows):
            city = f"City{i % 7}"
            zipc = f"Z{i % 7}" if i % violation_stride else f"ZBAD{i}"
            f.write(f"P{i},{city},{zipc}\n")


class Conn:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=60)
        self.file = self.sock.makefile("rw")

    def rpc(self, obj):
        self.file.write(json.dumps(obj) + "\n")
        self.file.flush()
        reply = json.loads(self.file.readline())
        return reply

    def close(self):
        self.file.close()
        self.sock.close()


def drive_tenant(port, tenant, rounds, errors):
    """Interleaved repairs and deltas for one tenant on its own socket."""
    try:
        conn = Conn(port)
        for i in range(rounds):
            r = conn.rpc({"op": "repair", "tenant": tenant,
                          "tau_r": [0.25, 0.5, 1.0][i % 3], "seed": i + 1,
                          "id": i})
            if not r.get("ok"):
                errors.append(f"{tenant} repair {i}: {r}")
            if r.get("id") != i:
                errors.append(f"{tenant} repair {i}: id echo broken: {r}")
            if i % 3 == 1:
                d = conn.rpc({"op": "apply_delta", "tenant": tenant,
                              "inserts": [[f"New{i}", f"City{i % 7}",
                                           f"Z{i % 7}"]]})
                if not d.get("ok"):
                    errors.append(f"{tenant} delta {i}: {d}")
        s = conn.rpc({"op": "sweep", "tenant": tenant,
                      "requests": [{"tau": 0}, {"tau_r": 0.5},
                                   {"tau_r": 1.0}]})
        if not s.get("ok") or len(s.get("results", [])) != 3:
            errors.append(f"{tenant} sweep: {s}")
        conn.close()
    except Exception as e:  # noqa: BLE001 - collect, don't crash the thread
        errors.append(f"{tenant}: {type(e).__name__}: {e}")


def parse_metrics(text):
    """Exposition text -> {series: float}; series keep their labels."""
    out = {}
    for line in text.strip().splitlines():
        series, value = line.rsplit(" ", 1)
        out[series] = float(value)
    return out


def start_server(server_bin, extra_args):
    """Launches the server and returns (proc, port) once it is listening."""
    proc = subprocess.Popen(
        [server_bin, "--port", "0", "--workers", "2",
         "--queue-depth", "1024"] + extra_args,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
    line = proc.stdout.readline()
    m = re.search(r"listening on 127\.0\.0\.1:(\d+)", line)
    assert m, f"no listening banner, got: {line!r}"
    return proc, int(m.group(1))


# The fixed request grid of the warm-restart bit-identity check: fully
# deterministic (explicit seeds), covering both τ forms.
PROBE_REQUESTS = [
    {"op": "repair", "tenant": "hosp", "tau_r": 0.5, "seed": 7},
    {"op": "repair", "tenant": "hosp", "tau_r": 1.0, "seed": 3},
    {"op": "repair", "tenant": "hosp", "tau": 0, "seed": 1},
]


def probe_responses(conn):
    """The probe grid's responses with the wall-clock field stripped —
    everything else must be bit-identical across a warm restart."""
    out = []
    for req in PROBE_REQUESTS:
        r = conn.rpc(req)
        r.pop("seconds", None)
        out.append(json.dumps(r, sort_keys=True))
    return out


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    server_bin = sys.argv[1]

    tmp = tempfile.mkdtemp(prefix="retrust_smoke_")
    csv_a = os.path.join(tmp, "hosp.csv")
    csv_b = os.path.join(tmp, "census.csv")
    write_tenant_csv(csv_a, 80, 9)
    write_tenant_csv(csv_b, 60, 7)

    proc, port = start_server(server_bin, ["--snapshot-dir", tmp])
    try:
        ctl = Conn(port)
        for tenant, path in (("hosp", csv_a), ("census", csv_b)):
            r = ctl.rpc({"op": "load_tenant", "tenant": tenant, "csv": path,
                         "fds": ["City->Zip"]})
            assert r.get("ok"), f"load_tenant {tenant}: {r}"

        rounds = 12
        errors = []
        threads = [threading.Thread(target=drive_tenant,
                                    args=(port, tenant, rounds, errors))
                   for tenant in ("hosp", "census")]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, "\n".join(errors)

        stats = ctl.rpc({"op": "stats"})
        assert stats.get("ok"), stats
        print(f"server stats: {json.dumps(stats, sort_keys=True)}")
        assert stats["rejected"] == 0, \
            f"requests rejected under capacity: {stats}"
        assert stats["expired_in_queue"] == 0, stats
        assert stats["cancelled"] == 0, stats
        # 12 repairs + 4 deltas + 1 sweep per tenant, 2 tenants.
        assert stats["completed"] == 2 * (rounds + 4 + 1), stats
        assert stats["queue_depth"] == 0 and stats["in_flight"] == 0, stats
        assert stats["p50_latency_seconds"] <= stats["p99_latency_seconds"]

        for tenant, base_rows in (("hosp", 80), ("census", 60)):
            ts = ctl.rpc({"op": "stats", "tenant": tenant})
            assert ts.get("ok") and ts["loaded"], ts
            assert ts["num_tuples"] == base_rows + 4, ts  # 4 delta inserts
            assert ts["data_version"] == 5, ts            # 1 + 4 applies
            assert ts["cache"]["contexts"], ts
            print(f"tenant {tenant}: n={ts['num_tuples']} "
                  f"v={ts['data_version']} "
                  f"cache_bytes={ts['cache']['bytes_estimate']}")

        # --- warm-restart phase -----------------------------------------
        # Baseline answers of the delta-mutated tenant, then a consistent-
        # cut snapshot of it.
        baseline = probe_responses(ctl)
        snap = os.path.join(tmp, "hosp.snap")
        r = ctl.rpc({"op": "save_snapshot", "tenant": "hosp", "path": snap})
        assert r.get("ok") and r.get("path") == snap, r
        assert os.path.getsize(snap) > 0

        # unload_tenant releases the session; census is DIRTY (its CSV
        # spec cannot reproduce the applied deltas) so the registry
        # auto-saves it to --snapshot-dir first, and the next request
        # reloads it transparently from that snapshot.
        r = ctl.rpc({"op": "unload_tenant", "tenant": "census"})
        assert r.get("ok") and r.get("unloaded"), r
        ts = ctl.rpc({"op": "stats", "tenant": "census"})
        assert ts.get("ok"), ts
        assert ts["loaded"] is False or not ts["loaded"], \
            f"census still loaded after unload: {ts}"
        r = ctl.rpc({"op": "repair", "tenant": "census", "tau_r": 1.0})
        assert r.get("ok"), f"repair after unload failed: {r}"

        r = ctl.rpc({"op": "shutdown"})
        assert r.get("ok"), r
        ctl.close()
        proc.wait(timeout=30)
        assert proc.returncode == 0, f"server exit {proc.returncode}"

        # Kill-and-restart: the replacement process restores hosp from the
        # snapshot file (no CSV, no O(n^2) rebuild) and must answer the
        # SAME probe grid identically.
        proc, port = start_server(
            server_bin,
            ["--tenant-snapshot", f"hosp={snap}", "--snapshot-dir", tmp])
        ctl = Conn(port)
        restored = probe_responses(ctl)
        assert restored == baseline, (
            "warm restart diverged:\n" +
            "\n".join(f"want {w}\n got {g}"
                      for w, g in zip(baseline, restored) if w != g))
        ts = ctl.rpc({"op": "stats", "tenant": "hosp"})
        assert ts.get("ok") and ts["loaded"], ts
        assert ts["num_tuples"] == 80 + 4, ts   # the deltas survived
        assert ts["data_version"] == 5, ts

        # Unload/reload round trip on the restored tenant stays identical.
        r = ctl.rpc({"op": "unload_tenant", "tenant": "hosp"})
        assert r.get("ok"), r
        assert probe_responses(ctl) == baseline, \
            "reload after unload diverged"

        r = ctl.rpc({"op": "shutdown"})
        assert r.get("ok"), r
        ctl.close()
        proc.wait(timeout=30)
        assert proc.returncode == 0, f"server exit {proc.returncode}"

        # --- pipelined-wire + quota phase -------------------------------
        proc, port = start_server(server_bin, [])
        ctl = Conn(port)
        for tenant, path in (("hosp", csv_a), ("census", csv_b)):
            r = ctl.rpc({"op": "load_tenant", "tenant": tenant, "csv": path,
                         "fds": ["City->Zip"]})
            assert r.get("ok"), f"load_tenant {tenant}: {r}"

        # Hundreds of concurrent connections, each pipelining a burst of
        # repairs over mixed tenants: every request goes out before any
        # reply is read, so replies interleave freely and only the echoed
        # id correlates them.
        num_conns, burst = 200, 4
        errors = []

        def pipeline_conn(conn_index):
            try:
                tenant = ("hosp", "census")[conn_index % 2]
                conn = Conn(port)
                ids = [conn_index * 1000 + j for j in range(burst)]
                lines = "".join(
                    json.dumps({"op": "repair", "tenant": tenant,
                                "tau_r": [0.25, 0.5, 1.0][j % 3],
                                "seed": j + 1, "id": ids[j]}) + "\n"
                    for j in range(burst))
                conn.file.write(lines)
                conn.file.flush()
                replies = {}
                for _ in range(burst):
                    reply = json.loads(conn.file.readline())
                    replies[reply.get("id")] = reply
                if sorted(replies) != ids:
                    errors.append(f"conn {conn_index}: id mismatch "
                                  f"{sorted(replies)} != {ids}")
                for i, reply in replies.items():
                    if not reply.get("ok"):
                        errors.append(f"conn {conn_index} id {i}: {reply}")
                conn.close()
            except Exception as e:  # noqa: BLE001
                errors.append(f"conn {conn_index}: {type(e).__name__}: {e}")

        threads = [threading.Thread(target=pipeline_conn, args=(i,))
                   for i in range(num_conns)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=300)
        assert not errors, "\n".join(errors[:10])
        stats = ctl.rpc({"op": "stats"})
        assert stats.get("ok"), stats
        assert stats["rejected"] == 0, \
            f"pipelined workload under capacity was shed: {stats}"
        assert stats["completed"] >= num_conns * burst, stats
        print(f"pipelined phase: {num_conns} connections x {burst} requests "
              f"ok (p99 {stats['p99_latency_seconds'] * 1e3:.2f}ms)")

        # Mid-load metrics scrape: the registry must already see the
        # pipelined burst (compared for monotonicity after the quota
        # phase below).
        m = ctl.rpc({"op": "metrics"})
        assert m.get("ok"), m
        assert m["series"] >= 15, f"too few metric series: {m['series']}"
        mid_metrics = parse_metrics(m["text"])
        assert mid_metrics[
            'retrust_wire_requests_total{verb="repair"}'] >= num_conns * burst

        # Quota fairness: "throttled" gets a tiny token bucket and is
        # flooded; "hosp" stays unlimited and runs concurrently. The
        # throttled tenant must shed with Overloaded (synchronously — the
        # rejects never enter the queue), the quiet tenant must see every
        # request succeed.
        r = ctl.rpc({"op": "load_tenant", "tenant": "throttled",
                     "csv": csv_b, "fds": ["City->Zip"],
                     "quota_rate": 1.0, "quota_burst": 2})
        assert r.get("ok"), r
        flood_outcomes = []

        def flood():
            try:
                conn = Conn(port)
                n = 30
                conn.file.write("".join(
                    json.dumps({"op": "repair", "tenant": "throttled",
                                "tau_r": 0.5, "seed": 1, "id": j}) + "\n"
                    for j in range(n)))
                conn.file.flush()
                for _ in range(n):
                    flood_outcomes.append(json.loads(conn.file.readline()))
                conn.close()
            except Exception as e:  # noqa: BLE001
                errors.append(f"flood: {type(e).__name__}: {e}")

        def quiet():
            try:
                conn = Conn(port)
                for j in range(10):
                    reply = conn.rpc({"op": "repair", "tenant": "hosp",
                                      "tau_r": 1.0, "seed": j + 1})
                    if not reply.get("ok"):
                        errors.append(f"quiet request {j} failed: {reply}")
                conn.close()
            except Exception as e:  # noqa: BLE001
                errors.append(f"quiet: {type(e).__name__}: {e}")

        flood_thread = threading.Thread(target=flood)
        quiet_thread = threading.Thread(target=quiet)
        flood_thread.start()
        quiet_thread.start()
        flood_thread.join(timeout=300)
        quiet_thread.join(timeout=300)
        assert not errors, "\n".join(errors[:10])
        served = sum(1 for r in flood_outcomes if r.get("ok"))
        shed = sum(1 for r in flood_outcomes
                   if not r.get("ok") and r.get("error") == "overloaded")
        assert served >= 1, f"burst tokens never admitted: {flood_outcomes[:3]}"
        assert shed >= 20, f"flood was not throttled: served={served} " \
                           f"shed={shed}"
        assert served + shed == len(flood_outcomes), flood_outcomes[:3]
        stats = ctl.rpc({"op": "stats"})
        assert stats["rejected_quota"] == shed, stats
        assert stats["rejected"] == stats["rejected_quota"], \
            f"non-quota rejections leaked into the quiet tenant: {stats}"
        print(f"quota phase: throttled served={served} shed={shed}, "
              f"quiet tenant all ok")

        # --- observability phase ----------------------------------------
        # Second scrape: every counter is monotone across scrapes, and the
        # registry agrees with both the stats verb and the client-side
        # tallies of the quota flood.
        m = ctl.rpc({"op": "metrics"})
        assert m.get("ok"), m
        metrics = parse_metrics(m["text"])
        regressed = [s for s, v in mid_metrics.items()
                     if "_total" in s and metrics.get(s, 0) < v]
        assert not regressed, f"counters went backwards: {regressed}"
        assert metrics[
            'retrust_requests_rejected_total{reason="quota"}'] == shed, \
            (metrics, shed)
        assert metrics["retrust_quota_denials_total"] == shed
        assert metrics["retrust_requests_completed_total"] == \
            stats["completed"], (metrics, stats)
        assert metrics["retrust_requests_submitted_total"] == \
            stats["completed"] + shed
        print(f"metrics phase: {m['series']} series, counters monotone, "
              f"registry agrees with client tallies")

        # A traced repair returns its span tree inline; untraced must not.
        r = ctl.rpc({"op": "repair", "tenant": "hosp", "tau_r": 0.5,
                     "seed": 1, "trace": True})
        assert r.get("ok"), r
        trace = r.get("trace")
        assert trace and trace["name"] == "request", r
        top = {s["name"] for s in trace["spans"]}
        assert {"decode", "queue_wait", "service"} <= top, trace
        service = next(s for s in trace["spans"] if s["name"] == "service")
        session = next(s for s in service.get("spans", [])
                       if s["name"] == "session")
        assert any(s["name"] == "search" for s in session.get("spans", [])), \
            trace
        r = ctl.rpc({"op": "repair", "tenant": "hosp", "tau_r": 0.5,
                     "seed": 1})
        assert r.get("ok") and "trace" not in r, r

        # The flight recorder remembers the most recent requests (the
        # traced + untraced repairs just issued lead, newest first).
        d = ctl.rpc({"op": "dump_recent", "limit": 5})
        assert d.get("ok"), d
        records = d.get("records", [])
        assert records, d
        assert records[0]["verb"] == "repair", records[0]
        assert records[0]["status"] == "ok", records[0]
        assert records[0]["traced"] is False and records[1]["traced"], records
        print(f"flight recorder: {len(records)} recent records, "
              f"newest verb={records[0]['verb']}")

        r = ctl.rpc({"op": "shutdown"})
        assert r.get("ok"), r
        ctl.close()
        proc.wait(timeout=30)
        assert proc.returncode == 0, f"server exit {proc.returncode}"
        print("service smoke (incl. warm restart + pipelined wire): OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()


if __name__ == "__main__":
    sys.exit(main())
